open Xic_xml
module Symbol = Xic_symbol.Symbol

type value =
  | Nodes of Doc.node_id list
  | Strs of string list
  | Bool of bool
  | Num of float
  | Str of string

type env = (string * value) list

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Step budget                                                         *)
(* ------------------------------------------------------------------ *)

exception Budget_exceeded

(* The remaining-steps counter, shared with the XQuery evaluator (which
   installs it through [with_budget] and ticks it for its own constructs).
   Domain-local so each worker of the parallel checker meters (or, in
   practice, runs unmetered) independently.  No counter installed =
   unlimited evaluation. *)
let budget_key : int ref option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let tick n =
  match Domain.DLS.get budget_key with
  | None -> ()
  | Some r ->
    r := !r - n;
    if !r <= 0 then raise Budget_exceeded

let with_budget ~steps f =
  let saved = Domain.DLS.get budget_key in
  Domain.DLS.set budget_key (Some (ref steps));
  Fun.protect ~finally:(fun () -> Domain.DLS.set budget_key saved) f

(* Measure the steps [f] consumes.  Under an installed budget the meter
   reads the counter around [f] (still enforcing the budget); otherwise
   it installs an effectively unlimited one, so metering never changes
   which evaluations succeed. *)
let with_meter f =
  match Domain.DLS.get budget_key with
  | Some r ->
    let before = !r in
    let v = f () in
    (v, before - !r)
  | None ->
    let r = ref max_int in
    Domain.DLS.set budget_key (Some r);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set budget_key None)
      (fun () ->
        let v = f () in
        (v, max_int - !r))

(* ------------------------------------------------------------------ *)
(* Coercions                                                           *)
(* ------------------------------------------------------------------ *)

let boolean = function
  | Nodes ns -> ns <> []
  | Strs ss -> ss <> []
  | Bool b -> b
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> s <> ""

let num_of_string s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> Float.nan

let string_value doc = function
  | Nodes [] -> ""
  | Nodes (n :: _) -> Doc.text_content doc n
  | Strs [] -> ""
  | Strs (s :: _) -> s
  | Bool b -> if b then "true" else "false"
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
    else string_of_float f
  | Str s -> s

let number = function
  | Bool b -> if b then 1.0 else 0.0
  | Num f -> f
  | Str s -> num_of_string s
  | (Nodes _ | Strs _) as v ->
    (* number() of a node-set is the number of its string-value; callers
       pass the doc through [number_v] below when nodes are possible. *)
    (match v with
     | Nodes _ -> Float.nan
     | Strs (s :: _) -> num_of_string s
     | _ -> Float.nan)

let number_v doc v =
  match v with
  | Nodes _ | Strs _ -> num_of_string (string_value doc v)
  | _ -> number v

let item_strings doc = function
  | Nodes ns -> List.map (Doc.text_content doc) ns
  | Strs ss -> ss
  | (Bool _ | Num _ | Str _) as v -> [ string_value doc v ]

(* The paper's [Cnt_D] aggregate counts distinct Datalog term instances:
   an element selector binds its variable to a node identity, a text
   selector to the text value.  Mirror that here — element nodes are
   distinct by identity, every other item by its string value. *)
let distinct_count doc = function
  | Nodes ns ->
    let key n =
      if Doc.is_element doc n then `Id n else `Val (Doc.text_content doc n)
    in
    List.length (List.sort_uniq compare (List.map key ns))
  | v -> List.length (List.sort_uniq compare (item_strings doc v))

let is_seq = function Nodes _ | Strs _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let cmp_scalar op a b =
  let open Ast in
  match op with
  | Eq -> a = b
  | Neq -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | _ -> invalid_arg "cmp_scalar"

(* Compare two atomic string values under XPath 1.0 rules, with the
   documented lexicographic fallback for non-numeric ordering. *)
let cmp_strings op (a : string) (b : string) =
  let open Ast in
  match op with
  | Eq -> String.equal a b
  | Neq -> not (String.equal a b)
  | Lt | Le | Gt | Ge ->
    let na = num_of_string a and nb = num_of_string b in
    if Float.is_nan na || Float.is_nan nb then cmp_scalar op a b
    else cmp_scalar op na nb
  | _ -> invalid_arg "cmp_strings"

let compare_values doc op l r =
  let open Ast in
  let is_bool = function Bool _ -> true | _ -> false in
  if (op = Eq || op = Neq) && (is_bool l || is_bool r) then
    cmp_scalar op (boolean l) (boolean r)
  else if is_seq l || is_seq r then begin
    match (l, r) with
    | Num f, other ->
      List.exists (fun s -> cmp_scalar op f (num_of_string s)) (item_strings doc other)
    | other, Num f ->
      List.exists (fun s -> cmp_scalar op (num_of_string s) f) (item_strings doc other)
    | _ ->
      let ls = item_strings doc l and rs = item_strings doc r in
      List.exists (fun a -> List.exists (fun b -> cmp_strings op a b) rs) ls
  end
  else begin
    match (l, r) with
    | Num a, b -> cmp_scalar op a (number_v doc b)
    | a, Num b -> cmp_scalar op (number_v doc a) b
    | _ -> cmp_strings op (string_value doc l) (string_value doc r)
  end

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

let axis_nodes doc axis id =
  let open Ast in
  match axis with
  | Child -> Doc.children doc id
  | Descendant -> Doc.descendants doc id
  | Descendant_or_self -> Doc.descendant_or_self doc id
  | Parent ->
    let p = Doc.parent doc id in
    if p = Doc.no_node then [] else [ p ]
  | Ancestor -> Doc.ancestors doc id
  | Ancestor_or_self -> id :: Doc.ancestors doc id
  | Self -> [ id ]
  | Following_sibling -> Doc.following_siblings doc id
  | Preceding_sibling -> Doc.preceding_siblings doc id
  | Attribute -> []

(* Sorting discipline.  A node-set is [clean] when it is distinct, in
   document order, and free of ancestor/descendant pairs.  Forward axes
   from a clean set emit document order by construction; from an unclean
   set even the child axis can interleave (child::* of an ancestor
   contains another context node itself), so the union must be re-sorted.
   [needs_sort] and [result_clean] encode, per axis, whether the step's
   union requires sorting given the input's state and whether its result
   is clean again. *)
let needs_sort axis ~clean ~n_ctx =
  match axis with
  | Ast.Self | Ast.Attribute -> false
  | Ast.Child -> not clean
  | Ast.Descendant | Ast.Descendant_or_self -> not clean
  | Ast.Following_sibling | Ast.Preceding_sibling -> (not clean) || n_ctx > 1
  | Ast.Parent -> (not clean) || n_ctx > 1
  | Ast.Ancestor | Ast.Ancestor_or_self -> true

let result_clean axis ~clean ~n_ctx =
  match axis with
  | Ast.Self | Ast.Attribute -> clean
  | Ast.Child -> clean  (* children of non-overlapping parents never nest *)
  | Ast.Descendant | Ast.Descendant_or_self -> false
  | Ast.Following_sibling | Ast.Preceding_sibling -> clean && n_ctx = 1
  | Ast.Parent -> clean && n_ctx = 1
  | Ast.Ancestor | Ast.Ancestor_or_self -> false

(* A node test, staged: the tag of a name test is interned once at compile
   time, so the per-node check is an int comparison. *)
let compile_test (test : Ast.nodetest) : Doc.t -> Doc.node_id -> bool =
  match test with
  | Ast.Node_test -> fun _ _ -> true
  | Ast.Text_test -> fun doc id -> Doc.is_text doc id
  | Ast.Wildcard -> fun doc id -> Doc.is_element doc id
  | Ast.Name_test n ->
    let sym = Symbol.intern n in
    fun doc id -> Doc.is_element doc id && Symbol.equal (Doc.tag doc id) sym

(* ------------------------------------------------------------------ *)
(* Evaluation contexts                                                 *)
(* ------------------------------------------------------------------ *)

type ctxt = {
  doc : Doc.t;
  env : env;
  node : Doc.node_id;
  pos : int;   (* position() *)
  size : int;  (* last() *)
  idx : Index.t option;
  bud : int ref option;  (* the installed budget, fetched once per run *)
}

(* Document-order sort through the index's rank table when one is
   attached ([Doc.sort_doc_order] walks every node to its root). *)
let sort_nodes ctx ids =
  match ctx.idx with
  | Some idx -> Index.sort_doc_order idx ids
  | None -> Doc.sort_doc_order ctx.doc ids

let charge ctx n =
  match ctx.bud with
  | None -> ()
  | Some r ->
    r := !r - n;
    if !r <= 0 then raise Budget_exceeded

(* Compiled code: all AST dispatch, name interning and index-planning
   analysis happen once in [compile_expr]; running a plan only executes
   closures.  The interpreter entry points ([eval] etc.) compile and run
   in one go, so both routes share a single semantics by construction. *)
type compiled = ctxt -> value

(* ------------------------------------------------------------------ *)
(* Index planning helpers (compile-time analyses)                      *)
(* ------------------------------------------------------------------ *)

(* Whether a predicate could observe the context position: positional
   predicates must be applied per parent group, so the flat candidate
   lists coming out of an index are only usable for predicates that
   neither mention position()/last() nor can evaluate to a number (a
   numeric predicate value is itself a position test). *)
let rec mentions_position (e : Ast.expr) =
  match e with
  | Ast.Number _ | Ast.Literal _ | Ast.Var _ -> false
  | Ast.Neg a -> mentions_position a
  | Ast.Binop (_, a, b) -> mentions_position a || mentions_position b
  | Ast.Call (("position" | "last"), _) -> true
  | Ast.Call (_, args) -> List.exists mentions_position args
  | Ast.Path (start, steps) ->
    (match start with Ast.From e -> mentions_position e | Ast.Abs | Ast.Rel -> false)
    || List.exists (fun (s : Ast.step) -> List.exists mentions_position s.preds) steps

let positionless_pred (e : Ast.expr) =
  (not (mentions_position e))
  && (match e with
      | Ast.Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or), _, _) -> true
      | Ast.Call
          ( ( "not" | "exists" | "empty" | "boolean" | "true" | "false"
            | "contains" | "starts-with" | "ends-with" ),
            _ ) -> true
      | Ast.Path _ -> true
      | _ -> false)

(* An expression whose value does not depend on the context node, so it can
   be evaluated once outside the candidate loop to drive an index probe. *)
let rec context_free (e : Ast.expr) =
  match e with
  | Ast.Literal _ | Ast.Var _ | Ast.Number _ -> true
  | Ast.Neg a -> context_free a
  | Ast.Binop (_, a, b) -> context_free a && context_free b
  | Ast.Call (("position" | "last" | "string" | "number" | "string-length"), []) ->
    false
  | Ast.Call (_, args) -> List.for_all context_free args
  | Ast.Path (Ast.From e, steps) ->
    context_free e
    && List.for_all (fun (s : Ast.step) -> s.preds = []) steps
  | Ast.Path (Ast.Abs, steps) ->
    List.for_all (fun (s : Ast.step) -> s.preds = []) steps
  | Ast.Path (Ast.Rel, _) -> false

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let rec compile_expr (e : Ast.expr) : compiled =
  let open Ast in
  match e with
  | Literal s ->
    let v = Str s in
    fun ctx -> charge ctx 1; v
  | Number f ->
    let v = Num f in
    fun ctx -> charge ctx 1; v
  | Var v ->
    fun ctx ->
      charge ctx 1;
      (match List.assoc_opt v ctx.env with
       | Some value -> value
       | None -> fail "unbound variable $%s" v)
  | Neg e ->
    let c = compile_expr e in
    fun ctx -> charge ctx 1; Num (-.number_v ctx.doc (c ctx))
  | Binop (And, a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun ctx -> charge ctx 1; Bool (boolean (ca ctx) && boolean (cb ctx))
  | Binop (Or, a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun ctx -> charge ctx 1; Bool (boolean (ca ctx) || boolean (cb ctx))
  | Binop (Union, a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun ctx ->
      charge ctx 1;
      (match (ca ctx, cb ctx) with
       | Nodes xs, Nodes ys -> Nodes (sort_nodes ctx (xs @ ys))
       | Strs xs, Strs ys -> Strs (xs @ ys)
       | _ -> fail "union of non node-sets")
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun ctx -> charge ctx 1; Bool (compare_values ctx.doc op (ca ctx) (cb ctx))
  | Binop (((Add | Sub | Mul | Div | Mod) as op), a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    let op_fn =
      match op with
      | Add -> ( +. )
      | Sub -> ( -. )
      | Mul -> ( *. )
      | Div -> ( /. )
      | Mod -> Float.rem
      | _ -> assert false
    in
    fun ctx ->
      charge ctx 1;
      Num (op_fn (number_v ctx.doc (ca ctx)) (number_v ctx.doc (cb ctx)))
  | Call (f, args) -> compile_call f args
  | Path (Abs, steps) -> compile_abs steps
  | Path (Rel, steps) ->
    let cs = compile_steps steps in
    fun ctx -> charge ctx 1; cs ctx false (Nodes [ ctx.node ])
  | Path (From e, steps) ->
    let ce = compile_expr e and cs = compile_steps steps in
    fun ctx -> charge ctx 1; cs ctx false (ce ctx)

(* Absolute paths start at the (virtual) document node, whose only child is
   the root element.  The first step is resolved specially; the rest
   proceed as usual.  Which variant runs is decided per evaluation on
   whether an index is attached to the context, so one plan serves both
   the scan and the indexed route. *)
and compile_abs steps : compiled =
  let open Ast in
  match steps with
  | [] -> fun ctx -> charge ctx 1; Nodes (Doc.roots ctx.doc)
  | first :: { axis = Child; preds = []; test } :: rest when first = desc_step ->
    (* The [//x] desugaring without predicates: child::x of
       descendant-or-self::node() is exactly the non-root descendants
       matching the test — already distinct and in document order, no
       re-sort needed.  Under an index a name test is answered from the
       by-name table minus the roots (a child step never yields a root). *)
    let tf = compile_test test in
    let crest = compile_steps rest in
    let scan ctx =
      let matches =
        List.concat_map
          (fun r -> List.filter (tf ctx.doc) (Doc.descendants ctx.doc r))
          (Doc.roots ctx.doc)
      in
      charge ctx (List.length matches);
      crest ctx false (Nodes matches)
    in
    (match test with
     | Name_test tag ->
       let sym = Symbol.intern tag in
       fun ctx ->
         charge ctx 1;
         (match ctx.idx with
          | Some idx ->
            let matches = Index.descendants_named_sym idx sym in
            charge ctx (1 + List.length matches);
            crest ctx false (Nodes matches)
          | None -> scan ctx)
     | _ -> fun ctx -> charge ctx 1; scan ctx)
  | first :: { axis = Child; preds = _ :: _ as preds; test = Name_test tag } :: rest
    when first = desc_step && List.for_all positionless_pred preds ->
    (* Indexed [//tag[preds]]: when some equality predicate can be served
       by a value index, probe it to get a small superset of the result,
       then re-check every predicate on the survivors (re-checking keeps
       the probe a pure optimization).  Positionless predicates make the
       flat candidate list safe — see [positionless_pred]. *)
    let sym = Symbol.intern tag in
    let cpreds = List.map compile_expr preds in
    let cprobe, cothers =
      match compile_pred_probe preds with
      | Some (p, others) -> (Some p, List.map compile_expr others)
      | None -> (None, [])
    in
    let crest = compile_steps rest in
    let generic = compile_abs_generic steps in
    fun ctx ->
      charge ctx 1;
      (match ctx.idx with
       | None -> generic ctx
       | Some idx ->
         (match (match cprobe with Some p -> run_probe ctx idx sym p | None -> None) with
          | Some ids ->
            (* the probe decides its predicate exactly, so only the
               remaining predicates are re-checked *)
            charge ctx (1 + List.length ids);
            crest ctx false (Nodes (run_preds ctx ids cothers))
          | None ->
            Index.note_fallback idx;
            let candidates = Index.descendants_named_sym idx sym in
            charge ctx (1 + List.length candidates);
            crest ctx false (Nodes (run_preds ctx candidates cpreds))))
  | _ ->
    let c = compile_abs_generic steps in
    fun ctx -> charge ctx 1; c ctx

and compile_abs_generic steps : ctxt -> value =
  let open Ast in
  match steps with
  | [] -> fun ctx -> Nodes (Doc.roots ctx.doc)
  | step :: rest ->
    let tf = compile_test step.test in
    let cpreds = List.map compile_expr step.preds in
    let crest = compile_steps rest in
    let candidates_of =
      match step.axis with
      | Child -> fun ctx -> Doc.roots ctx.doc
      | Descendant | Descendant_or_self ->
        fun ctx -> List.concat_map (Doc.descendant_or_self ctx.doc) (Doc.roots ctx.doc)
      | Self ->
        if step.test = Node_test then fun ctx -> Doc.roots ctx.doc else fun _ -> []
      | Parent | Ancestor | Ancestor_or_self | Attribute
      | Following_sibling | Preceding_sibling -> fun _ -> []
    in
    (* child-of-document-node results (the roots) are clean; descendant
       results overlap *)
    let clean = match step.axis with Child | Self -> true | _ -> false in
    fun ctx ->
      let filtered = List.filter (tf ctx.doc) (candidates_of ctx) in
      let filtered = run_preds ctx filtered cpreds in
      crest ctx clean (Nodes filtered)

(* Find one predicate that a value index can serve.  The supported shapes,
   with [V] a context-free string-valued comparand and either operand
   order:

     [text() = V]                       probe the candidate's own pcdata
     [@a = V]                           probe the candidate's attribute
     [c1/…/ck/text() = V]               probe a descendant chain's pcdata
     [c1/…/ck/@a = V]                   probe a descendant chain's attribute
     [c [inner]]                        existence of a child satisfying a
                                        probeable [inner] (recursively)

   For chain shapes the probe looks up the innermost element in the value
   index and walks back up through the chain of parent tags to recover the
   candidate.  The walk-up proves the probed predicate exactly (it is the
   very existence the predicate asserts), so the caller re-applies only
   the *other* predicates — returned as the second component — to the
   survivors.  Names are interned and the comparand compiled once, at
   compile time. *)
and compile_pred_probe preds =
  let rec classify_steps = function
    | [ { Ast.axis = Ast.Child; test = Ast.Text_test; preds = [] } ] ->
      Some ([], `Text)
    | [ { Ast.axis = Ast.Attribute; test = Ast.Name_test a; preds = [] } ] ->
      Some ([], `Attr a)
    | { Ast.axis = Ast.Child; test = Ast.Name_test c; preds = [] } :: (_ :: _ as rest)
      -> Option.map (fun (hops, leaf) -> (c :: hops, leaf)) (classify_steps rest)
    | _ -> None
  in
  let classify = function
    | Ast.Path (Ast.Rel, steps) -> classify_steps steps
    | _ -> None
  in
  let rec probe_of = function
    | Ast.Binop (Ast.Eq, a, b) ->
      (match (classify a, classify b) with
       | Some hl, None when context_free b -> Some (hl, b)
       | None, Some hl when context_free a -> Some (hl, a)
       | _ -> None)
    | Ast.Path
        (Ast.Rel, [ { Ast.axis = Ast.Child; test = Ast.Name_test c; preds = [ q ] } ])
      -> Option.map (fun ((hops, leaf), comp) -> ((c :: hops, leaf), comp)) (probe_of q)
    | _ -> None
  in
  let rec first_probe acc = function
    | [] -> None
    | p :: rest ->
      (match probe_of p with
       | Some pr -> Some (pr, List.rev_append acc rest)
       | None -> first_probe (p :: acc) rest)
  in
  match first_probe [] preds with
  | None -> None
  | Some (((hops, leaf), comparand), others) ->
    let leaf =
      match leaf with `Text -> `Text | `Attr a -> `Attr (Symbol.intern a)
    in
    (* hops = [c1; …; ck]: chain of child tags from the candidate down to
       the probed element.  The index lookup uses ck (or the candidate tag
       itself when the chain is empty); [up_tags] are the tags checked in
       hop order while walking parents back up to the candidate. *)
    let lookup_tag, up_tags =
      match List.rev_map Symbol.intern hops with
      | [] -> (None, [])
      | ck :: above -> (Some ck, above)
    in
    Some ((lookup_tag, up_tags, leaf, compile_expr comparand), others)

and run_probe ctx idx sym (lookup_tag, up_tags, leaf, ccomp) =
  match ccomp ctx with
  | Num _ | Bool _ -> None
  | v ->
    let doc = ctx.doc in
    let ltag = match lookup_tag with None -> sym | Some t -> t in
    let keys = item_strings doc v in
    let hits =
      List.concat_map
        (fun key ->
          match leaf with
          | `Text -> Index.by_pcdata_sym idx ~tag:ltag key
          | `Attr a -> Index.by_attr_sym idx ~tag:ltag ~attr:a key)
        keys
    in
    let hits =
      match lookup_tag with
      | None -> hits
      | Some _ ->
        (* recover the candidate by walking up the hop chain *)
        List.filter_map
          (fun id ->
            let rec up id = function
              | [] ->
                let x = Doc.parent doc id in
                if x <> Doc.no_node && Symbol.equal (Doc.tag doc x) sym then Some x
                else None
              | t :: rest ->
                let p = Doc.parent doc id in
                if p <> Doc.no_node && Symbol.equal (Doc.tag doc p) t then up p rest
                else None
            in
            up id up_tags)
          hits
    in
    let hits = List.filter (fun id -> Doc.parent doc id <> Doc.no_node) hits in
    let multi_key = match keys with [] | [ _ ] -> false | _ -> true in
    Some
      (if lookup_tag = None && not multi_key then hits
       else Index.sort_doc_order idx hits)

and compile_call f args : compiled =
  let carr = Array.of_list (List.map compile_expr args) in
  let nargs = Array.length carr in
  let arg ctx i =
    if i < nargs then carr.(i) ctx else fail "%s: missing argument %d" f (i + 1)
  in
  let body : ctxt -> value =
    match (f, nargs) with
    | "position", 0 -> fun ctx -> Num (float_of_int ctx.pos)
    | "position-of", 1 ->
      (* Position of a node among its parent's element children; this is the
         [Pos] column of the relational mapping (DESIGN.md).  The paper's
         generated queries write [$x/position()] for the same thing. *)
      fun ctx ->
        (match arg ctx 0 with
         | Nodes (n :: _) ->
           let p =
             match ctx.idx with
             | Some idx -> Index.position idx n
             | None -> Doc.position ctx.doc n
           in
           Num (float_of_int p)
         | Nodes [] -> Num Float.nan
         | _ -> fail "position-of: expected a node-set")
    | "last", 0 -> fun ctx -> Num (float_of_int ctx.size)
    | "count", 1 ->
      fun ctx ->
        (match arg ctx 0 with
         | Nodes ns -> Num (float_of_int (List.length ns))
         | Strs ss -> Num (float_of_int (List.length ss))
         | _ -> fail "count: expected a node-set")
    | "count-distinct", 1 ->
      (* The translation of the paper's Cnt_D aggregate. *)
      fun ctx -> Num (float_of_int (distinct_count ctx.doc (arg ctx 0)))
    | "exists", 1 ->
      fun ctx ->
        (match arg ctx 0 with
         | Nodes ns -> Bool (ns <> [])
         | Strs ss -> Bool (ss <> [])
         | v -> Bool (boolean v))
    | "empty", 1 -> fun ctx -> Bool (not (boolean (arg ctx 0)))
    | "not", 1 -> fun ctx -> Bool (not (boolean (arg ctx 0)))
    | "true", 0 -> fun _ -> Bool true
    | "false", 0 -> fun _ -> Bool false
    | "boolean", 1 -> fun ctx -> Bool (boolean (arg ctx 0))
    | "number", 1 -> fun ctx -> Num (number_v ctx.doc (arg ctx 0))
    | "number", 0 -> fun ctx -> Num (num_of_string (Doc.text_content ctx.doc ctx.node))
    | "string", 1 -> fun ctx -> Str (string_value ctx.doc (arg ctx 0))
    | "string", 0 -> fun ctx -> Str (Doc.text_content ctx.doc ctx.node)
    | "name", 0 ->
      fun ctx ->
        Str (if Doc.is_element ctx.doc ctx.node then Doc.name ctx.doc ctx.node else "")
    | "name", 1 ->
      fun ctx ->
        (match arg ctx 0 with
         | Nodes (n :: _) when Doc.is_element ctx.doc n -> Str (Doc.name ctx.doc n)
         | Nodes _ -> Str ""
         | _ -> fail "name: expected a node-set")
    | "concat", n when n >= 2 ->
      fun ctx ->
        Str
          (String.concat ""
             (List.map (fun c -> string_value ctx.doc (c ctx)) (Array.to_list carr)))
    | "contains", 2 ->
      fun ctx ->
        let hay = string_value ctx.doc (arg ctx 0)
        and needle = string_value ctx.doc (arg ctx 1) in
        let rec search i =
          if i + String.length needle > String.length hay then false
          else if String.sub hay i (String.length needle) = needle then true
          else search (i + 1)
        in
        Bool (search 0)
    | "starts-with", 2 ->
      fun ctx ->
        let s = string_value ctx.doc (arg ctx 0)
        and p = string_value ctx.doc (arg ctx 1) in
        Bool
          (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
    | "string-length", 1 ->
      fun ctx -> Num (float_of_int (String.length (string_value ctx.doc (arg ctx 0))))
    | "string-length", 0 ->
      fun ctx ->
        Num (float_of_int (String.length (Doc.text_content ctx.doc ctx.node)))
    | "sum", 1 ->
      fun ctx ->
        (match arg ctx 0 with
         | Nodes ns ->
           Num
             (List.fold_left
                (fun a n -> a +. num_of_string (Doc.text_content ctx.doc n))
                0.0 ns)
         | Strs ss -> Num (List.fold_left (fun a s -> a +. num_of_string s) 0.0 ss)
         | v -> Num (number_v ctx.doc v))
    | "floor", 1 -> fun ctx -> Num (Float.floor (number_v ctx.doc (arg ctx 0)))
    | "ceiling", 1 -> fun ctx -> Num (Float.ceil (number_v ctx.doc (arg ctx 0)))
    | "round", 1 -> fun ctx -> Num (Float.round (number_v ctx.doc (arg ctx 0)))
    | "normalize-space", 1 ->
      fun ctx ->
        let s = string_value ctx.doc (arg ctx 0) in
        Str (String.concat " " (String.split_on_char ' ' s |> List.filter (( <> ) "")))
    | "substring", (2 | 3) ->
      (* XPath 1.0 semantics with 1-based rounding positions *)
      fun ctx ->
        let s = string_value ctx.doc (arg ctx 0) in
        let start = Float.round (number_v ctx.doc (arg ctx 1)) in
        let len =
          if nargs = 3 then Float.round (number_v ctx.doc (arg ctx 2))
          else Float.of_int (String.length s) +. 1.0 -. start
        in
        if Float.is_nan start || Float.is_nan len then Str ""
        else begin
          let first = max 1 (int_of_float start) in
          let last = int_of_float (start +. len) - 1 in
          let last = min last (String.length s) in
          if last < first then Str ""
          else Str (String.sub s (first - 1) (last - first + 1))
        end
    | "substring-before", 2 | "substring-after", 2 ->
      fun ctx ->
        let s = string_value ctx.doc (arg ctx 0)
        and sep = string_value ctx.doc (arg ctx 1) in
        let n = String.length s and m = String.length sep in
        let rec find i =
          if i + m > n then None
          else if String.sub s i m = sep then Some i
          else find (i + 1)
        in
        (match find 0 with
         | None -> Str ""
         | Some i ->
           if f = "substring-before" then Str (String.sub s 0 i)
           else Str (String.sub s (i + m) (n - i - m)))
    | "translate", 3 ->
      fun ctx ->
        let s = string_value ctx.doc (arg ctx 0) in
        let from = string_value ctx.doc (arg ctx 1)
        and to_ = string_value ctx.doc (arg ctx 2) in
        let b = Buffer.create (String.length s) in
        String.iter
          (fun c ->
            match String.index_opt from c with
            | None -> Buffer.add_char b c
            | Some i -> if i < String.length to_ then Buffer.add_char b to_.[i])
          s;
        Str (Buffer.contents b)
    | "upper-case", 1 ->
      fun ctx -> Str (String.uppercase_ascii (string_value ctx.doc (arg ctx 0)))
    | "lower-case", 1 ->
      fun ctx -> Str (String.lowercase_ascii (string_value ctx.doc (arg ctx 0)))
    | "string-join", 2 ->
      fun ctx ->
        let items = item_strings ctx.doc (arg ctx 0) in
        Str (String.concat (string_value ctx.doc (arg ctx 1)) items)
    | "ends-with", 2 ->
      fun ctx ->
        let s = string_value ctx.doc (arg ctx 0)
        and p = string_value ctx.doc (arg ctx 1) in
        let n = String.length s and m = String.length p in
        Bool (m <= n && String.sub s (n - m) m = p)
    | _, n -> fun _ -> fail "unknown function %s/%d" f n
  in
  fun ctx -> charge ctx 1; body ctx

and compile_steps (steps : Ast.step list) : ctxt -> bool -> value -> value =
  match steps with
  | [] -> fun _ _ v -> v
  | step :: rest ->
    let cstep = compile_one_step step in
    let crest = compile_steps rest in
    fun ctx clean v ->
      (match v with
       | Nodes ns ->
         let v', clean' = cstep ctx clean ns in
         crest ctx clean' v'
       | Strs _ -> fail "cannot apply a step to attribute values"
       | _ -> fail "cannot apply a step to a non node-set")

and compile_one_step (step : Ast.step) : ctxt -> bool -> Doc.node_id list -> value * bool =
  if step.axis = Ast.Attribute then begin
    (* The attribute axis yields string items. *)
    let getter =
      match step.test with
      | Ast.Name_test n ->
        let sym = Symbol.intern n in
        fun ctx id ->
          (match Doc.attr_sym ctx.doc id sym with Some v -> [ v ] | None -> [])
      | Ast.Wildcard | Ast.Node_test ->
        fun ctx id -> List.map snd (Doc.attrs_sym ctx.doc id)
      | Ast.Text_test -> fun _ _ -> []
    in
    let has_preds = step.preds <> [] in
    fun ctx _clean ns ->
      let vals =
        List.concat_map
          (fun id -> if not (Doc.is_element ctx.doc id) then [] else getter ctx id)
          ns
      in
      if has_preds then fail "predicates on the attribute axis are not supported";
      (Strs vals, false)
  end
  else begin
    let tf = compile_test step.test in
    let cpreds = List.map compile_expr step.preds in
    let axis = step.axis in
    let named_child =
      match (step.axis, step.test) with
      | Ast.Child, Ast.Name_test n -> Some (Symbol.intern n)
      | _ -> None
    in
    fun ctx clean ns ->
      let per_node id =
        let candidates =
          match (named_child, ctx.idx) with
          | Some sym, Some idx ->
            (* cached per-parent named-child list *)
            Index.children_named_sym idx id sym
          | _ -> List.filter (tf ctx.doc) (axis_nodes ctx.doc axis id)
        in
        charge ctx (1 + List.length candidates);
        run_preds ctx candidates cpreds
      in
      let n_ctx = List.length ns in
      let clean = clean || n_ctx <= 1 in
      let result = List.concat_map per_node ns in
      let result =
        if needs_sort axis ~clean ~n_ctx then sort_nodes ctx result else result
      in
      (Nodes result, result_clean axis ~clean ~n_ctx)
  end

and run_preds ctx nodes = function
  | [] -> nodes
  | p :: rest ->
    let size = List.length nodes in
    let keep =
      List.filteri
        (fun i id ->
          let ctx' = { ctx with node = id; pos = i + 1; size } in
          match p ctx' with
          | Num f -> Float.equal f (float_of_int (i + 1))
          | v -> boolean v)
        nodes
    in
    run_preds ctx keep rest

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let initial_ctx doc env ctx_node index =
  let node =
    match ctx_node with
    | Some n -> n
    | None -> if Doc.has_root doc then Doc.root doc else Doc.no_node
  in
  { doc; env; node; pos = 1; size = 1; idx = index;
    bud = Domain.DLS.get budget_key }

let compile e = compile_expr e

let run doc ?(env = []) ?ctx ?index code = code (initial_ctx doc env ctx index)

let eval doc ?(env = []) ?ctx ?index e = run doc ~env ?ctx ?index (compile_expr e)

let select doc ?env ?ctx ?index e =
  match eval doc ?env ?ctx ?index e with
  | Nodes ns -> ns
  | _ -> fail "expected a node-set result for %s" (Ast.to_string e)

let eval_steps doc ?(env = []) ?index ns steps =
  (compile_steps steps) (initial_ctx doc env None index) false (Nodes ns)
