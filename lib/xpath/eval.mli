(** Evaluation of XPath expressions against a {!Xic_xml.Doc.t}.

    The semantics follows XPath 1.0: node-sets in document order,
    existential general comparisons, positional predicates.  One pragmatic
    extension (documented in DESIGN.md): the ordering operators [<], [<=],
    [>], [>=] fall back to lexicographic comparison when both operands are
    strings that do not parse as numbers, instead of always converting to
    numbers. *)

open Xic_xml

(** Result of evaluating an expression. *)
type value =
  | Nodes of Doc.node_id list  (** node-set in document order *)
  | Strs of string list        (** attribute values; kept in source order *)
  | Bool of bool
  | Num of float
  | Str of string

type env = (string * value) list
(** Variable bindings for [$name] references. *)

exception Eval_error of string

exception Budget_exceeded
(** Raised mid-evaluation when the installed step budget runs out. *)

val with_budget : steps:int -> (unit -> 'a) -> 'a
(** Run [f] under a step budget: every expression evaluated and every
    candidate node examined by a location step costs one step, and
    evaluation aborts with {!Budget_exceeded} once [steps] are spent.
    Budgets nest (the innermost wins) and are shared with the XQuery
    evaluator, which delegates here.  Without an installed budget,
    evaluation is unlimited. *)

val with_meter : (unit -> 'a) -> 'a * int
(** [with_meter f] runs [f] and additionally returns the evaluation
    steps it consumed.  Composes with {!with_budget}: under an installed
    budget the meter only reads the counter (the budget still applies);
    otherwise an effectively unlimited budget is installed for the
    duration, so metering never changes which evaluations succeed. *)

val tick : int -> unit
(** Charge [n] steps against the installed budget, if any (used by the
    XQuery evaluator to meter its own constructs).
    @raise Budget_exceeded when the budget runs out. *)

type compiled
(** A compiled plan: the AST is lowered once into a closure pipeline —
    name tests interned, index-probe analysis done, call dispatch
    resolved — and can then be run any number of times (and from several
    domains concurrently, the plan itself is immutable).  {!eval} is
    exactly [compile] followed by [run], so interpreted and compiled
    evaluation share one semantics by construction. *)

val compile : Ast.expr -> compiled

val run : Doc.t -> ?env:env -> ?ctx:Doc.node_id -> ?index:Index.t -> compiled -> value
(** Run a compiled plan; arguments as {!eval}. *)

val eval : Doc.t -> ?env:env -> ?ctx:Doc.node_id -> ?index:Index.t -> Ast.expr -> value
(** Evaluate an expression.  [ctx] is the context node (defaults to the
    root element); absolute paths always start at the root.  When [index]
    is supplied, [//tag] steps, [//tag\[eq-pred\]] probes, named child
    steps and [position-of] are served from the secondary indexes; the
    result is always identical to the scan interpretation.
    @raise Eval_error on unknown variables or functions. *)

val select :
  Doc.t -> ?env:env -> ?ctx:Doc.node_id -> ?index:Index.t -> Ast.expr ->
  Doc.node_id list
(** Evaluate and require a node-set result. @raise Eval_error otherwise. *)

val eval_steps :
  Doc.t -> ?env:env -> ?index:Index.t -> Doc.node_id list -> Ast.step list -> value
(** Apply location steps to an explicit initial node-set (used by the
    XQuery evaluator). *)

val boolean : value -> bool
(** XPath [boolean()] coercion. *)

val number : value -> float
(** XPath [number()] coercion ([nan] when not convertible). *)

val string_value : Doc.t -> value -> string
(** XPath [string()] coercion (string-value of the first node for
    node-sets). *)

val item_strings : Doc.t -> value -> string list
(** The string values of all items of a sequence (singleton for scalars);
    used for existential comparison and by the XQuery evaluator. *)

val distinct_count : Doc.t -> value -> int
(** [count-distinct] semantics, mirroring the Datalog evaluation of the
    paper's [Cnt_D] aggregate: element nodes are distinct term instances
    (node identity), text nodes and scalar items count by string value. *)

val compare_values : Doc.t -> Ast.binop -> value -> value -> bool
(** General comparison with existential semantics over sequences. *)
