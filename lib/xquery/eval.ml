open Xic_xml
module XE = Xic_xpath.Eval
module XP = Xic_xpath.Ast
module Symbol = Xic_symbol.Symbol
module Obs = Xic_obs.Obs

(* Candidate/probe accounting for the observability layer, gated on
   [Obs.Metrics.detailed] because binding enumerations sit on the hot
   path of every check.  Each enumeration contributes [1 + length] to
   the candidate count (the production of the candidate sequence itself
   is a candidate-set event, matching the step accounting of [XE.tick]),
   and every index probe corresponds to exactly one enumeration event,
   so [eval_index_probes <= eval_candidates] holds by construction —
   the differential oracle asserts exactly that invariant. *)
let c_probes = Obs.Metrics.counter "eval_index_probes"
let c_candidates = Obs.Metrics.counter "eval_candidates"
let c_eval_steps = Obs.Metrics.counter "eval_steps"

let note_candidates l =
  if !Obs.Metrics.detailed then
    Obs.Metrics.add c_candidates (1 + List.length l)

let note_probe () = if !Obs.Metrics.detailed then Obs.Metrics.incr c_probes

type value = XE.value

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* Evaluation context: the document plus its (optional) secondary
   indexes.  The planner below consults the indexes to narrow quantifier
   and FLWOR bindings; the XPath evaluator receives them for its own fast
   paths. *)
type cx = {
  doc : Doc.t;
  idx : Index.t option;
}

(* Split a sequence value into the items bound one by one by [for] and
   quantifier variables. *)
let items (v : value) : value list =
  match v with
  | XE.Nodes ns -> List.map (fun n -> XE.Nodes [ n ]) ns
  | XE.Strs ss -> List.map (fun s -> XE.Str s) ss
  | XE.Bool _ | XE.Num _ | XE.Str _ -> [ v ]

let rec seq_append (a : value) (b : value) : value =
  match (a, b) with
  | XE.Nodes [], v | v, XE.Nodes [] -> v
  | XE.Strs [], v | v, XE.Strs [] -> v
  | XE.Nodes xs, XE.Nodes ys -> XE.Nodes (xs @ ys)
  | XE.Strs xs, XE.Strs ys -> XE.Strs (xs @ ys)
  | a, b ->
    (* Heterogeneous sequences degrade to their string items; only
       emptiness and comparison are observable in the generated queries. *)
    XE.Strs (string_items a @ string_items b)

and string_items = function
  | XE.Nodes ns -> List.map string_of_int ns
  | XE.Strs ss -> ss
  | XE.Bool b -> [ string_of_bool b ]
  | XE.Num f -> [ string_of_float f ]
  | XE.Str s -> [ s ]

let empty_seq : value = XE.Strs []

let with_budget = XE.with_budget
let with_meter = XE.with_meter

(* ------------------------------------------------------------------ *)
(* Planner: recognizing indexable binding shapes (compile time)        *)
(* ------------------------------------------------------------------ *)

(* Top-level conjuncts of a condition. *)
let conjuncts e =
  let rec go acc = function
    | Ast.Binop (XP.And, a, b) -> go (go acc b) a
    | e -> e :: acc
  in
  go [] e

(* Every variable name referenced anywhere in an expression, nested scopes
   included.  Used to decide the earliest quantifier depth at which a
   conjunct can be evaluated; counting shadowed inner uses as references
   only delays a conjunct, never evaluates it too early, so the
   over-approximation is sound. *)
let rec xp_vars acc (e : XP.expr) =
  match e with
  | XP.Var v -> v :: acc
  | XP.Literal _ | XP.Number _ -> acc
  | XP.Neg a -> xp_vars acc a
  | XP.Binop (_, a, b) -> xp_vars (xp_vars acc a) b
  | XP.Call (_, args) -> List.fold_left xp_vars acc args
  | XP.Path (start, steps) ->
    let acc = match start with XP.From e -> xp_vars acc e | XP.Abs | XP.Rel -> acc in
    List.fold_left
      (fun acc (s : XP.step) -> List.fold_left xp_vars acc s.preds)
      acc steps

let rec expr_vars acc (e : Ast.expr) =
  match e with
  | Ast.Xp x -> xp_vars acc x
  | Ast.Param _ -> acc
  | Ast.Seq es -> List.fold_left expr_vars acc es
  | Ast.Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Ast.If (c, t, f) -> expr_vars (expr_vars (expr_vars acc c) t) f
  | Ast.Elem (_, body) -> List.fold_left expr_vars acc body
  | Ast.Quant (_, binds, cond) ->
    let acc = List.fold_left (fun acc (_, e) -> expr_vars acc e) acc binds in
    expr_vars acc cond
  | Ast.Flwor (clauses, where, ret) ->
    let acc =
      List.fold_left
        (fun acc cl ->
          match cl with Ast.For (_, e) | Ast.Let (_, e) -> expr_vars acc e)
        acc clauses
    in
    let acc = match where with None -> acc | Some w -> expr_vars acc w in
    expr_vars acc ret
  | Ast.Call (_, args) -> List.fold_left expr_vars acc args

(* A binding source of the generated [//tag] shape. *)
let binding_tag = function
  | Ast.Xp
      (XP.Path
         (XP.Abs, [ d; { XP.axis = XP.Child; test = XP.Name_test tag; preds = [] } ]))
    when d = XP.desc_step -> Some tag
  | _ -> None

(* An access path rooted at the bound variable that one of the value
   indexes can answer: $v/text(), $v/child/text() or $v/@attr. *)
let var_probe v = function
  | Ast.Xp (XP.Path (XP.From (XP.Var v'), steps)) when v' = v ->
    (match steps with
     | [ { XP.axis = XP.Child; test = XP.Text_test; preds = [] } ] -> Some `Text
     | [ { XP.axis = XP.Child; test = XP.Name_test c; preds = [] };
         { XP.axis = XP.Child; test = XP.Text_test; preds = [] } ] ->
       Some (`Child_text c)
     | [ { XP.axis = XP.Attribute; test = XP.Name_test a; preds = [] } ] ->
       Some (`Attr a)
     | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Compiled code, as in the XPath evaluator: one AST walk at compile time
   interns every name, resolves every narrowing plan and pre-compiles the
   embedded XPath expressions; running a plan only executes closures.
   [eval] below is [compile] + [run], one semantics for both routes. *)
type code = cx -> XE.env -> value

(* How a quantifier / [for] binding may be narrowed through the value
   indexes at run time. *)
type narrow_plan =
  | N_never  (* source is not [//tag]: enumerate, no fallback noted *)
  | N_fallback of Symbol.t  (* [//tag] but no probe-able conjunct *)
  | N_probe of Symbol.t * probe_kind * code  (* tag, access path, comparand *)

and probe_kind =
  | P_text
  | P_attr of Symbol.t
  | P_child_text of Symbol.t

(* A scheduled conjunct test of an existential quantifier (see
   [compile_some]): either the plain compiled conjunct, or a comparison
   whose operands may have been pre-evaluated into slots at a shallower
   binding depth (the plain conjunct rides along as the fallback when a
   pre-evaluation failed). *)
type operand =
  | O_slot of int
  | O_code of code

type test =
  | T_plain of (cx -> XE.env -> bool)
  | T_cmp of XP.binop * operand * operand * (cx -> XE.env -> bool)

(* Per-evaluation state of the innermost-level equality join (see
   [compile_some]): the key table is built on first arrival at the
   deepest binding and reused across every outer tuple; the join is
   disabled for the whole evaluation when any candidate's key fails to
   evaluate to a string-valued sequence. *)
type jstate =
  | J_unbuilt
  | J_disabled
  | J_table of (string, value list) Hashtbl.t

let rec compile_expr (e : Ast.expr) : code =
  match e with
  | Ast.Xp x ->
    let cx_code = XE.compile x in
    fun cx env ->
      XE.tick 1;
      (try XE.run cx.doc ~env ~ctx:(Doc.root cx.doc) ?index:cx.idx cx_code
       with XE.Eval_error m -> raise (Eval_error m))
  | Ast.Param p ->
    let key = "%" ^ p in
    fun _ env ->
      XE.tick 1;
      (match List.assoc_opt key env with
       | Some v -> v
       | None -> fail "unbound parameter %%%s" p)
  | Ast.Seq es ->
    let ces = List.map compile_expr es in
    fun cx env ->
      XE.tick 1;
      List.fold_left (fun acc c -> seq_append acc (c cx env)) empty_seq ces
  | Ast.Binop (XP.And, a, b) ->
    let ca = compile_bool a and cb = compile_bool b in
    fun cx env -> XE.tick 1; XE.Bool (ca cx env && cb cx env)
  | Ast.Binop (XP.Or, a, b) ->
    let ca = compile_bool a and cb = compile_bool b in
    fun cx env -> XE.tick 1; XE.Bool (ca cx env || cb cx env)
  | Ast.Binop (((XP.Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    let ca = compile_expr a and cb = compile_expr b in
    fun cx env ->
      XE.tick 1;
      XE.Bool (XE.compare_values cx.doc op (ca cx env) (cb cx env))
  | Ast.Binop (op, a, b) ->
    (* Arithmetic and union delegate to the XPath evaluator's rules by
       re-wrapping pre-evaluated operands. *)
    let ca = compile_expr a and cb = compile_expr b in
    let ka = "%%tmp_a" and kb = "%%tmp_b" in
    let wrapped = XE.compile (XP.Binop (op, XP.Var ka, XP.Var kb)) in
    fun cx env ->
      XE.tick 1;
      let va = ca cx env and vb = cb cx env in
      let env' = (ka, va) :: (kb, vb) :: env in
      (try XE.run cx.doc ~env:env' ~ctx:(Doc.root cx.doc) ?index:cx.idx wrapped
       with XE.Eval_error m -> raise (Eval_error m))
  | Ast.If (c, t, f) ->
    let cc = compile_bool c and ct = compile_expr t and cf = compile_expr f in
    fun cx env -> XE.tick 1; if cc cx env then ct cx env else cf cx env
  | Ast.Elem (tag, body) ->
    let cbody = List.map compile_expr body in
    fun cx env ->
      XE.tick 1;
      let parts = List.map (fun c -> XE.string_value cx.doc (c cx env)) cbody in
      let inner = String.concat "" parts in
      XE.Str
        (if inner = "" then "<" ^ tag ^ "/>"
         else "<" ^ tag ^ ">" ^ inner ^ "</" ^ tag ^ ">")
  | Ast.Quant (Ast.Some_, binds, cond) -> compile_some binds cond
  | Ast.Quant (Ast.Every, binds, cond) ->
    (* Narrowing and conjunct scheduling are existential-only (a dropped
       or pruned candidate must falsify the whole condition); universal
       quantifiers enumerate and test every tuple. *)
    let ccond = compile_bool cond in
    let rec build = function
      | [] -> fun cx env -> ccond cx env
      | (v, e) :: rest ->
        let ce = compile_expr e in
        let crest = build rest in
        fun cx env ->
          List.for_all (fun item -> crest cx ((v, item) :: env)) (items (ce cx env))
    in
    let body = build binds in
    fun cx env -> XE.tick 1; XE.Bool (body cx env)
  | Ast.Flwor (clauses, where, ret) ->
    (* Narrowing a [for] clause by a top-level [where] conjunct is sound
       for any return shape: a dropped tuple fails the [where] and
       contributes nothing to the result sequence. *)
    let wconjs = match where with None -> [] | Some w -> conjuncts w in
    let cwhere = Option.map compile_bool where in
    let cret = compile_expr ret in
    let rec build = function
      | [] ->
        fun cx env acc ->
          let keep = match cwhere with None -> true | Some cw -> cw cx env in
          if keep then seq_append acc (cret cx env) else acc
      | Ast.For (v, e) :: rest ->
        let ce = compile_expr e in
        let nplan = compile_narrow v e wconjs in
        let crest = build rest in
        fun cx env acc ->
          let candidates =
            match run_narrow cx env nplan with
            | Some narrowed -> narrowed
            | None -> items (ce cx env)
          in
          note_candidates candidates;
          List.fold_left
            (fun acc item -> crest cx ((v, item) :: env) acc)
            acc candidates
      | Ast.Let (v, e) :: rest ->
        let ce = compile_expr e in
        let crest = build rest in
        fun cx env acc -> crest cx ((v, ce cx env) :: env) acc
    in
    let body = build clauses in
    fun cx env -> XE.tick 1; body cx env empty_seq
  | Ast.Call (f, args) -> compile_call f args

(* Existential quantifier compilation.  Beyond per-binding index narrowing,
   the plan schedules each top-level conjunct of the condition at the
   earliest binding depth where every quantified variable it mentions is
   bound, and pre-evaluates comparison operands that only depend on
   shallower bindings into slots.  So

     some $r in //rev, $a in //aut satisfies p($r) and q($r, $a)

   tests [p] once per [$r] instead of once per [($r, $a)] pair, and the
   [$r]-only operand of [q] is computed once per [$r] rather than per
   pair.  Pruning on a failed conjunct is sound for existential semantics
   (the conjunction cannot hold for any deeper extension); relative
   conjunct order is preserved along every root-to-leaf path, and an
   evaluation error in an early test or pre-evaluation defers back to
   per-tuple evaluation of the full condition, reproducing the sequential
   interpretation's error behavior. *)
and compile_some binds cond : code =
  let conjs = conjuncts cond in
  let ccond = compile_bool cond in
  match binds with
  | [] -> fun cx env -> XE.tick 1; XE.Bool (ccond cx env)
  | _ ->
    let n = List.length binds in
    let names = List.map fst binds in
    (* depth at which a variable is (last) bound; 0 = not bound here *)
    let level_of_var v =
      let rec go i lvl = function
        | [] -> lvl
        | name :: rest -> go (i + 1) (if String.equal name v then i else lvl) rest
      in
      go 1 0 names
    in
    let level_of_expr e =
      List.fold_left (fun m v -> max m (level_of_var v)) 0 (expr_vars [] e)
    in
    let nslots = ref 0 in
    let prevals = Array.make (n + 1) [] in  (* depth -> (slot, code) list *)
    let tests = Array.make (n + 1) [] in    (* depth -> test list *)
    let hoist lvl e =
      let s = !nslots in
      incr nslots;
      prevals.(lvl) <- prevals.(lvl) @ [ (s, compile_expr e) ];
      O_slot s
    in
    let prev = ref 0 in
    (* Innermost-level equality join: when the FIRST conjunct tested at
       the deepest binding is [slot = f($vn)] (either operand order) with
       [f] mentioning only the deepest variable, the deepest loop can be
       replaced by a hash probe — key every candidate by [f] once per
       evaluation, then look each outer tuple's slot value up instead of
       scanning all candidates.  Restricting to the first test keeps
       error behavior identical: a sequential evaluation of a skipped
       candidate would have started (and stopped) at that same false
       conjunct. *)
    let join_info = ref None in
    let vn = List.nth names (n - 1) in
    let vn_pure e = List.for_all (String.equal vn) (expr_vars [] e) in
    List.iter
      (fun conj ->
        (* monotone schedule keeps conjuncts in source order on every path *)
        let k = max (level_of_expr conj) !prev in
        prev := k;
        let test =
          match conj with
          | Ast.Binop (((XP.Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
            let la = level_of_expr a and lb = level_of_expr b in
            if la < k || lb < k then begin
              let oa = if la < k then hoist la a else O_code (compile_expr a) in
              let ob = if lb < k then hoist lb b else O_code (compile_expr b) in
              (if op = XP.Eq && k = n then
                 match (tests.(k), oa, ob) with
                 | [], O_slot s, O_code c when lb = k && vn_pure b ->
                   join_info := Some (s, c)
                 | [], O_code c, O_slot s when la = k && vn_pure a ->
                   join_info := Some (s, c)
                 | _ -> ());
              T_cmp (op, oa, ob, compile_bool conj)
            end
            else T_plain (compile_bool conj)
          | _ -> T_plain (compile_bool conj)
        in
        tests.(k) <- tests.(k) @ [ test ])
      conjs;
    let exec_test cx env slots = function
      | T_plain f -> f cx env
      | T_cmp (op, oa, ob, fallback) ->
        let get = function O_slot s -> slots.(s) | O_code c -> Some (c cx env) in
        let va = get oa in
        let vb = get ob in
        (match (va, vb) with
         | Some va, Some vb ->
           XE.tick 1;
           XE.compare_values cx.doc op va vb
         | _ -> fallback cx env)
    in
    (* run one intermediate depth's pre-evaluations and tests; [`False]
       prunes this candidate, [`Plain] defers to per-tuple evaluation *)
    let run_level cx env slots pv ts =
      List.iter
        (fun (s, c) ->
          slots.(s) <-
            (try Some (c cx env) with Eval_error _ | XE.Eval_error _ -> None))
        pv;
      try if List.for_all (exec_test cx env slots) ts then `True else `False
      with Eval_error _ | XE.Eval_error _ -> `Plain
    in
    let rec build lvl = function
      | [] -> assert false
      | [ (v, e) ] ->
        (* deepest binding: evaluate the remaining tests in place, errors
           propagating as in the sequential interpretation (an operand
           never hoists to the deepest level, so no pre-evaluations) *)
        let ce = compile_expr e in
        let nplan = compile_narrow v e conjs in
        let ts = tests.(lvl) in
        (* the join table is only reusable across outer tuples when the
           candidate source is closed (no free variables) *)
        let join = if expr_vars [] e = [] then !join_info else None in
        let ts_rest = match ts with _ :: r -> r | [] -> [] in
        let scan cx env slots plain =
          let candidates =
            match run_narrow ~ordered:false cx env nplan with
            | Some narrowed -> narrowed
            | None -> items (ce cx env)
          in
          note_candidates candidates;
          List.exists
            (fun item ->
              let env' = (v, item) :: env in
              if plain then ccond cx env'
              else List.for_all (exec_test cx env' slots) ts)
            candidates
        in
        let table cx env jst =
          match !jst with
          | J_table tbl -> Some tbl
          | J_disabled -> None
          | J_unbuilt ->
            let ckey = match join with Some (_, c) -> c | None -> assert false in
            let result =
              try
                let candidates = items (ce cx env) in
                XE.tick (1 + List.length candidates);
                let tbl = Hashtbl.create (2 * List.length candidates) in
                List.iter
                  (fun item ->
                    match ckey cx ((v, item) :: env) with
                    | XE.Num _ | XE.Bool _ -> raise Exit
                    | kv ->
                      List.iter
                        (fun key ->
                          let prev =
                            try Hashtbl.find tbl key with Not_found -> []
                          in
                          Hashtbl.replace tbl key (item :: prev))
                        (XE.item_strings cx.doc kv))
                  candidates;
                (* restore candidate order within each bucket *)
                Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl;
                Some tbl
              with Exit | Eval_error _ | XE.Eval_error _ -> None
            in
            jst :=
              (match result with Some tbl -> J_table tbl | None -> J_disabled);
            result
        in
        fun cx env slots jst plain -> (
          match join with
          | None -> scan cx env slots plain
          | Some (s, _) when not plain -> (
            match slots.(s) with
            | None -> scan cx env slots plain
            | Some kv -> (
              match kv with
              | XE.Num _ | XE.Bool _ -> scan cx env slots plain
              | _ -> (
                match table cx env jst with
                | None -> scan cx env slots plain
                | Some tbl ->
                  let bucket key =
                    try Hashtbl.find tbl key with Not_found -> []
                  in
                  let cands =
                    match XE.item_strings cx.doc kv with
                    | [] -> []
                    | [ key ] -> bucket key
                    | keys ->
                      (* rare multi-key probe: union in key order, dedup *)
                      List.rev
                        (List.fold_left
                           (fun acc key ->
                             List.fold_left
                               (fun acc it ->
                                 if List.memq it acc then acc else it :: acc)
                               acc (bucket key))
                           [] keys)
                  in
                  XE.tick (1 + List.length cands);
                  note_candidates cands;
                  List.exists
                    (fun item ->
                      let env' = (v, item) :: env in
                      List.for_all (exec_test cx env' slots) ts_rest)
                    cands)))
          | Some _ -> scan cx env slots plain)
      | (v, e) :: rest ->
        let ce = compile_expr e in
        let nplan = compile_narrow v e conjs in
        let pv = prevals.(lvl) and ts = tests.(lvl) in
        let crest = build (lvl + 1) rest in
        fun cx env slots jst plain ->
          let candidates =
            match run_narrow ~ordered:false cx env nplan with
            | Some narrowed -> narrowed
            | None -> items (ce cx env)
          in
          note_candidates candidates;
          List.exists
            (fun item ->
              let env' = (v, item) :: env in
              if plain then crest cx env' slots jst true
              else
                match run_level cx env' slots pv ts with
                | `False -> false
                | `True -> crest cx env' slots jst false
                | `Plain -> crest cx env' slots jst true)
            candidates
    in
    let cbinds = build 1 binds in
    let nslots = !nslots in
    let pv0 = prevals.(0) and ts0 = tests.(0) in
    fun cx env ->
      XE.tick 1;
      XE.Bool
        (let slots = Array.make nslots None in
         let jst = ref J_unbuilt in
         match run_level cx env slots pv0 ts0 with
         | `False -> false
         | `True -> cbinds cx env slots jst false
         | `Plain -> cbinds cx env slots jst true)

(* Resolve the narrowing plan of one binding at compile time: the binding
   source must be [//tag] and some conjunct must equate an indexable
   access path of the bound variable ($v/text(), $v/c/text() or $v/@a)
   with a comparand expression; names are interned and the comparand
   compiled here.  Whether a probe actually runs is decided per evaluation
   ([run_narrow]): it needs an index, and a comparand that evaluates in
   the current environment to a string-valued sequence. *)
and compile_narrow v src conjs : narrow_plan =
  match binding_tag src with
  | None -> N_never
  | Some tag ->
    let tag = Symbol.intern tag in
    let probe_of = function
      | Ast.Binop (XP.Eq, a, b) ->
        (match var_probe v a with
         | Some probe -> Some (probe, b)
         | None ->
           (match var_probe v b with
            | Some probe -> Some (probe, a)
            | None -> None))
      | _ -> None
    in
    let rec first = function
      | [] -> None
      | c :: rest -> (match probe_of c with Some r -> Some r | None -> first rest)
    in
    (match first conjs with
     | None -> N_fallback tag
     | Some (probe, comparand) ->
       let probe =
         match probe with
         | `Text -> P_text
         | `Attr a -> P_attr (Symbol.intern a)
         | `Child_text c -> P_child_text (Symbol.intern c)
       in
       N_probe (tag, probe, compile_expr comparand))

(* Try to serve the candidate items of a binding from the value indexes.
   The narrowed set is a subset of [//tag] containing every item that can
   satisfy the probed conjunct; the caller still evaluates the full
   condition on each item, so a probe is a pure optimization.  [ordered]
   requests document order; a FLWOR [for] needs it because the candidates
   flow into the result sequence, whereas a quantifier only tests each
   candidate, so deduplicating by node id suffices — [order_key] walks to
   the root, which is the dominant cost of a probe on wide documents. *)
and run_narrow ?(ordered = true) cx env (plan : narrow_plan) : value list option =
  match cx.idx with
  | None -> None
  | Some idx ->
    (match plan with
     | N_never -> None
     | N_fallback _ ->
       Index.note_fallback idx;
       None
     | N_probe (tag, probe, ccomp) ->
       let rhs =
         (* The comparand may reference variables bound later (or the
            probed variable itself); then it cannot drive a probe. *)
         try Some (ccomp cx env) with
         | Eval_error _ | XE.Eval_error _ -> None
       in
       (match rhs with
        | None | Some (XE.Num _) | Some (XE.Bool _) ->
          (* numbers and booleans do not compare by string value *)
          Index.note_fallback idx;
          None
        | Some rv ->
          let keys = XE.item_strings cx.doc rv in
          let ids =
            List.concat_map
              (fun key ->
                match probe with
                | P_text -> Index.by_pcdata_sym idx ~tag key
                | P_attr a -> Index.by_attr_sym idx ~tag ~attr:a key
                | P_child_text c ->
                  Index.by_pcdata_sym idx ~tag:c key
                  |> List.map (Doc.parent cx.doc)
                  |> List.filter (fun p ->
                         p <> Doc.no_node
                         && Doc.is_element cx.doc p
                         && Symbol.equal (Doc.tag cx.doc p) tag))
              keys
          in
          (* [//tag] never yields a root, and multi-key / parent-hop
             probes can produce duplicates out of order *)
          let ids =
            List.filter (fun id -> Doc.parent cx.doc id <> Doc.no_node) ids
          in
          let ids =
            if ordered then
              match cx.idx with
              | Some idx -> Index.sort_doc_order idx ids
              | None -> Doc.sort_doc_order cx.doc ids
            else List.sort_uniq (fun (a : int) b -> Stdlib.compare a b) ids
          in
          XE.tick (1 + List.length ids);
          note_probe ();
          Some (List.map (fun n -> XE.Nodes [ n ]) ids)))

and compile_call f args : code =
  let cargs = List.map compile_expr args in
  (* the fallback to the XPath function library, via pre-evaluated operand
     variables, is resolved and compiled up front *)
  let keys = List.mapi (fun i _ -> "%%arg" ^ string_of_int i) args in
  let wrapped = XE.compile (XP.Call (f, List.map (fun k -> XP.Var k) keys)) in
  let exec cx env (vals : value list) : value =
    match (f, vals) with
    | "exists", [ v ] ->
      XE.Bool
        (match v with
         | XE.Nodes ns -> ns <> []
         | XE.Strs ss -> ss <> []
         | v -> XE.boolean v)
    | "empty", [ v ] ->
      XE.Bool
        (match v with
         | XE.Nodes ns -> ns = []
         | XE.Strs ss -> ss = []
         | v -> not (XE.boolean v))
    | "not", [ v ] -> XE.Bool (not (XE.boolean v))
    | "same-node", [ a; b ] ->
      (* node identity, existential over sequences (XQuery's [is] on the
         singletons the translation produces) *)
      (match (a, b) with
       | XE.Nodes xs, XE.Nodes ys ->
         XE.Bool (List.exists (fun x -> List.mem x ys) xs)
       | _ -> fail "same-node: expected node sequences")
    | "count", [ XE.Nodes ns ] -> XE.Num (float_of_int (List.length ns))
    | "count", [ XE.Strs ss ] -> XE.Num (float_of_int (List.length ss))
    | "count", [ _ ] -> XE.Num 1.0
    | "count-distinct", [ v ] ->
      (* The translation of the paper's [Cnt_D] aggregate. *)
      XE.Num (float_of_int (XE.distinct_count cx.doc v))
    | "sum", [ v ] ->
      let ss = XE.item_strings cx.doc v in
      XE.Num
        (List.fold_left
           (fun a s ->
             a
             +.
             match float_of_string_opt (String.trim s) with
             | Some f -> f
             | None -> Float.nan)
           0.0 ss)
    | "boolean", [ v ] -> XE.Bool (XE.boolean v)
    | "string", [ v ] -> XE.Str (XE.string_value cx.doc v)
    | "number", [ v ] -> XE.Num (XE.number v)
    | _ ->
      let env' = List.combine keys vals @ env in
      (try XE.run cx.doc ~env:env' ~ctx:(Doc.root cx.doc) ?index:cx.idx wrapped
       with XE.Eval_error m -> raise (Eval_error m))
  in
  fun cx env ->
    XE.tick 1;
    exec cx env (List.map (fun c -> c cx env) cargs)

and compile_bool e =
  let c = compile_expr e in
  fun cx env -> XE.boolean (c cx env)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type compiled = code

let compile e = compile_expr e

let run doc ?(env = []) ?(params = []) ?index code =
  let env = List.map (fun (p, v) -> ("%" ^ p, v)) params @ env in
  let cx = { doc; idx = index } in
  if not (Obs.Trace.is_enabled ()) then code cx env
  else
    Obs.Trace.with_span "eval" (fun () ->
        let v, steps = XE.with_meter (fun () -> code cx env) in
        Obs.Trace.add_attr "steps" (string_of_int steps);
        Obs.Metrics.add c_eval_steps steps;
        v)

let run_bool doc ?env ?params ?index code =
  XE.boolean (run doc ?env ?params ?index code)

let eval doc ?env ?params ?index e = run doc ?env ?params ?index (compile_expr e)

let eval_bool doc ?env ?params ?index e = XE.boolean (eval doc ?env ?params ?index e)

(* ------------------------------------------------------------------ *)
(* Plan description (xicheck --explain)                                *)
(* ------------------------------------------------------------------ *)

(* Render the decisions [compile_some]/[compile_narrow] would take for
   an expression without compiling it: per-binding narrowing, the
   conjunct schedule with hoisted comparison operands, and the
   innermost-level hash join.  The analysis mirrors the compile
   functions above; keep them in sync. *)
let describe (e : Ast.expr) : string =
  let b = Buffer.create 256 in
  let line indent fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b (String.make (2 * indent) ' ');
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let probe_of v = function
    | Ast.Binop (XP.Eq, a, b) ->
      (match var_probe v a with
       | Some p -> Some (p, b)
       | None ->
         (match var_probe v b with Some p -> Some (p, a) | None -> None))
    | _ -> None
  in
  let narrow_desc v src conjs =
    match binding_tag src with
    | None -> "scan (source not //tag)"
    | Some tag ->
      let rec first = function
        | [] -> None
        | c :: rest ->
          (match probe_of v c with Some r -> Some r | None -> first rest)
      in
      (match first conjs with
       | None -> Printf.sprintf "tag index //%s (no probe-able conjunct)" tag
       | Some (probe, comparand) ->
         let path =
           match probe with
           | `Text -> Printf.sprintf "$%s/text()" v
           | `Attr a -> Printf.sprintf "$%s/@%s" v a
           | `Child_text c -> Printf.sprintf "$%s/%s/text()" v c
         in
         Printf.sprintf "index probe //%s via %s = %s" tag path
           (Ast.to_string comparand))
  in
  let rec go ind (e : Ast.expr) =
    match e with
    | Ast.Quant (Ast.Some_, binds, cond) when binds <> [] ->
      let conjs = conjuncts cond in
      let names = List.map fst binds in
      let n = List.length binds in
      line ind "some [%s]"
        (String.concat ", " (List.map (fun v -> "$" ^ v) names));
      List.iteri
        (fun i (v, src) ->
          line (ind + 1) "bind $%s @%d: %s" v (i + 1) (narrow_desc v src conjs))
        binds;
      let level_of_var v =
        let rec goi i lvl = function
          | [] -> lvl
          | name :: rest ->
            goi (i + 1) (if String.equal name v then i else lvl) rest
        in
        goi 1 0 names
      in
      let level_of_expr e =
        List.fold_left (fun m v -> max m (level_of_var v)) 0 (expr_vars [] e)
      in
      let vn = List.nth names (n - 1) in
      let vn_pure e = List.for_all (String.equal vn) (expr_vars [] e) in
      let source_closed =
        match binds with
        | [] -> false
        | _ -> expr_vars [] (snd (List.nth binds (n - 1))) = []
      in
      let prev = ref 0 in
      let innermost_tests = ref 0 in
      let join = ref None in
      List.iter
        (fun conj ->
          let k = max (level_of_expr conj) !prev in
          prev := k;
          let hoists =
            match conj with
            | Ast.Binop ((XP.Eq | Neq | Lt | Le | Gt | Ge), a, bb) ->
              let la = level_of_expr a and lb = level_of_expr bb in
              if la < k || lb < k then
                List.filter_map
                  (fun (l, e) -> if l < k then Some (l, e) else None)
                  [ (la, a); (lb, bb) ]
              else []
            | _ -> []
          in
          (match conj with
           | Ast.Binop (XP.Eq, a, bb) when k = n && !innermost_tests = 0 ->
             let la = level_of_expr a and lb = level_of_expr bb in
             if la < k && lb = k && vn_pure bb then join := Some (a, bb)
             else if lb < k && la = k && vn_pure a then join := Some (bb, a)
           | _ -> ());
          if k = n then incr innermost_tests;
          line (ind + 1) "test @%d: %s%s" k (Ast.to_string conj)
            (match hoists with
             | [] -> ""
             | hs ->
               Printf.sprintf " [hoist %s]"
                 (String.concat ", "
                    (List.map
                       (fun (l, e) ->
                         Printf.sprintf "%s @%d" (Ast.to_string e) l)
                       hs))))
        conjs;
      (match !join with
       | Some (outer, key) when source_closed ->
         line (ind + 1) "join: hash $%s on %s, probe with %s" vn
           (Ast.to_string key) (Ast.to_string outer)
       | _ -> ());
      List.iter (fun c -> go (ind + 1) c) conjs
    | Ast.Quant (Ast.Every, binds, cond) ->
      line ind "every [%s]: enumerate all tuples (universal, no narrowing)"
        (String.concat ", " (List.map (fun (v, _) -> "$" ^ v) binds));
      go (ind + 1) cond
    | Ast.Flwor (clauses, where, ret) ->
      let wconjs = match where with None -> [] | Some w -> conjuncts w in
      line ind "flwor";
      List.iter
        (function
          | Ast.For (v, src) ->
            line (ind + 1) "for $%s: %s" v (narrow_desc v src wconjs)
          | Ast.Let (v, _) -> line (ind + 1) "let $%s" v)
        clauses;
      List.iter (fun c -> go (ind + 1) c) wconjs;
      go (ind + 1) ret
    | Ast.Binop (_, a, bb) ->
      go ind a;
      go ind bb
    | Ast.If (c, t, f) ->
      go ind c;
      go ind t;
      go ind f
    | Ast.Quant (_, _, cond) -> go ind cond
    | Ast.Seq es | Ast.Elem (_, es) | Ast.Call (_, es) -> List.iter (go ind) es
    | Ast.Xp _ | Ast.Param _ -> ()
  in
  go 0 e;
  if Buffer.length b = 0 then "(no quantifier or flwor plan)\n"
  else Buffer.contents b
