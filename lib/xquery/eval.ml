open Xic_xml
module XE = Xic_xpath.Eval
module XP = Xic_xpath.Ast

type value = XE.value

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* Evaluation context: the document plus its (optional) secondary
   indexes.  The planner below consults the indexes to narrow quantifier
   and FLWOR bindings; the XPath evaluator receives them for its own fast
   paths. *)
type cx = {
  doc : Doc.t;
  idx : Index.t option;
}

(* Split a sequence value into the items bound one by one by [for] and
   quantifier variables. *)
let items (v : value) : value list =
  match v with
  | XE.Nodes ns -> List.map (fun n -> XE.Nodes [ n ]) ns
  | XE.Strs ss -> List.map (fun s -> XE.Str s) ss
  | XE.Bool _ | XE.Num _ | XE.Str _ -> [ v ]

let rec seq_append (a : value) (b : value) : value =
  match (a, b) with
  | XE.Nodes [], v | v, XE.Nodes [] -> v
  | XE.Strs [], v | v, XE.Strs [] -> v
  | XE.Nodes xs, XE.Nodes ys -> XE.Nodes (xs @ ys)
  | XE.Strs xs, XE.Strs ys -> XE.Strs (xs @ ys)
  | a, b ->
    (* Heterogeneous sequences degrade to their string items; only
       emptiness and comparison are observable in the generated queries. *)
    XE.Strs (string_items a @ string_items b)

and string_items = function
  | XE.Nodes ns -> List.map string_of_int ns
  | XE.Strs ss -> ss
  | XE.Bool b -> [ string_of_bool b ]
  | XE.Num f -> [ string_of_float f ]
  | XE.Str s -> [ s ]

let empty_seq : value = XE.Strs []

let with_budget = XE.with_budget

(* ------------------------------------------------------------------ *)
(* Planner: recognizing indexable binding shapes                       *)
(* ------------------------------------------------------------------ *)

(* Top-level conjuncts of a condition. *)
let conjuncts e =
  let rec go acc = function
    | Ast.Binop (XP.And, a, b) -> go (go acc b) a
    | e -> e :: acc
  in
  go [] e

(* A binding source of the generated [//tag] shape. *)
let binding_tag = function
  | Ast.Xp
      (XP.Path
         (XP.Abs, [ d; { XP.axis = XP.Child; test = XP.Name_test tag; preds = [] } ]))
    when d = XP.desc_step -> Some tag
  | _ -> None

(* An access path rooted at the bound variable that one of the value
   indexes can answer: $v/text(), $v/child/text() or $v/@attr. *)
let var_probe v = function
  | Ast.Xp (XP.Path (XP.From (XP.Var v'), steps)) when v' = v ->
    (match steps with
     | [ { XP.axis = XP.Child; test = XP.Text_test; preds = [] } ] -> Some `Text
     | [ { XP.axis = XP.Child; test = XP.Name_test c; preds = [] };
         { XP.axis = XP.Child; test = XP.Text_test; preds = [] } ] ->
       Some (`Child_text c)
     | [ { XP.axis = XP.Attribute; test = XP.Name_test a; preds = [] } ] ->
       Some (`Attr a)
     | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval_expr cx env (e : Ast.expr) : value =
  XE.tick 1;
  match e with
  | Ast.Xp x ->
    (try XE.eval cx.doc ~env ~ctx:(Doc.root cx.doc) ?index:cx.idx x
     with XE.Eval_error m -> raise (Eval_error m))
  | Ast.Param p ->
    (match List.assoc_opt ("%" ^ p) env with
     | Some v -> v
     | None -> fail "unbound parameter %%%s" p)
  | Ast.Seq es ->
    List.fold_left (fun acc e -> seq_append acc (eval_expr cx env e)) empty_seq es
  | Ast.Binop (XP.And, a, b) ->
    XE.Bool (bool_of cx env a && bool_of cx env b)
  | Ast.Binop (XP.Or, a, b) ->
    XE.Bool (bool_of cx env a || bool_of cx env b)
  | Ast.Binop (((XP.Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    XE.Bool (XE.compare_values cx.doc op (eval_expr cx env a) (eval_expr cx env b))
  | Ast.Binop (op, a, b) ->
    (* Arithmetic and union delegate to the XPath evaluator's rules by
       re-wrapping pre-evaluated operands. *)
    let va = eval_expr cx env a and vb = eval_expr cx env b in
    let lift v name =
      let key = "%%tmp_" ^ name in
      (key, v)
    in
    let ka, va' = lift va "a" and kb, vb' = lift vb "b" in
    let env' = (ka, va') :: (kb, vb') :: env in
    (try
       XE.eval cx.doc ~env:env' ~ctx:(Doc.root cx.doc) ?index:cx.idx
         (XP.Binop (op, XP.Var ka, XP.Var kb))
     with XE.Eval_error m -> raise (Eval_error m))
  | Ast.If (c, t, f) ->
    if bool_of cx env c then eval_expr cx env t else eval_expr cx env f
  | Ast.Elem (tag, body) ->
    let parts =
      List.map (fun e -> XE.string_value cx.doc (eval_expr cx env e)) body
    in
    let inner = String.concat "" parts in
    XE.Str
      (if inner = "" then "<" ^ tag ^ "/>" else "<" ^ tag ^ ">" ^ inner ^ "</" ^ tag ^ ">")
  | Ast.Quant (q, binds, cond) ->
    let conjs = conjuncts cond in
    let rec go env = function
      | [] -> bool_of cx env cond
      | (v, e) :: rest ->
        let candidates =
          match q with
          | Ast.Some_ ->
            (* Narrowing by a conjunct is sound for existential
               quantifiers only: a dropped item falsifies the conjunct,
               hence the whole condition. *)
            (match narrow cx env (v, e) conjs with
             | Some narrowed -> narrowed
             | None -> items (eval_expr cx env e))
          | Ast.Every -> items (eval_expr cx env e)
        in
        let test item = go ((v, item) :: env) rest in
        (match q with
         | Ast.Some_ -> List.exists test candidates
         | Ast.Every -> List.for_all test candidates)
    in
    XE.Bool (go env binds)
  | Ast.Flwor (clauses, where, ret) ->
    (* Narrowing a [for] clause by a top-level [where] conjunct is sound
       for any return shape: a dropped tuple fails the [where] and
       contributes nothing to the result sequence. *)
    let wconjs = match where with None -> [] | Some w -> conjuncts w in
    let rec go env acc = function
      | [] ->
        let keep =
          match where with None -> true | Some w -> bool_of cx env w
        in
        if keep then seq_append acc (eval_expr cx env ret) else acc
      | Ast.For (v, e) :: rest ->
        let candidates =
          match narrow cx env (v, e) wconjs with
          | Some narrowed -> narrowed
          | None -> items (eval_expr cx env e)
        in
        List.fold_left
          (fun acc item -> go ((v, item) :: env) acc rest)
          acc candidates
      | Ast.Let (v, e) :: rest ->
        go ((v, eval_expr cx env e) :: env) acc rest
    in
    go env empty_seq clauses
  | Ast.Call (f, args) -> eval_call cx env f args

(* Try to serve the candidate items of a binding from the value indexes.
   The binding source must be [//tag] and some conjunct must equate an
   indexable access path of the bound variable ($v/text(), $v/c/text() or
   $v/@a) with an expression evaluable in the current environment to a
   string-valued sequence.  The narrowed set is a subset of [//tag]
   containing every item that can satisfy that conjunct; the caller still
   evaluates the full condition on each item, so a probe is a pure
   optimization. *)
and narrow cx env (v, src) conjs =
  match cx.idx with
  | None -> None
  | Some idx ->
    (match binding_tag src with
     | None -> None
     | Some tag ->
       let probe_of = function
         | Ast.Binop (XP.Eq, a, b) ->
           (match var_probe v a with
            | Some probe -> Some (probe, b)
            | None ->
              (match var_probe v b with
               | Some probe -> Some (probe, a)
               | None -> None))
         | _ -> None
       in
       let rec first = function
         | [] -> None
         | c :: rest ->
           (match probe_of c with Some r -> Some r | None -> first rest)
       in
       (match first conjs with
        | None ->
          Index.note_fallback idx;
          None
        | Some (probe, comparand) ->
          let rhs =
            (* The comparand may reference variables bound later (or the
               probed variable itself); then it cannot drive a probe. *)
            try Some (eval_expr cx env comparand) with
            | Eval_error _ | XE.Eval_error _ -> None
          in
          (match rhs with
           | None | Some (XE.Num _) | Some (XE.Bool _) ->
             (* numbers and booleans do not compare by string value *)
             Index.note_fallback idx;
             None
           | Some rv ->
             let keys = XE.item_strings cx.doc rv in
             let ids =
               List.concat_map
                 (fun key ->
                   match probe with
                   | `Text -> Index.by_pcdata idx ~tag key
                   | `Attr a -> Index.by_attr idx ~tag ~attr:a key
                   | `Child_text c ->
                     Index.by_pcdata idx ~tag:c key
                     |> List.map (Doc.parent cx.doc)
                     |> List.filter (fun p ->
                            p <> Doc.no_node
                            && Doc.is_element cx.doc p
                            && Doc.name cx.doc p = tag))
                 keys
             in
             (* [//tag] never yields a root, and multi-key / parent-hop
                probes can produce duplicates out of order *)
             let ids =
               List.filter (fun id -> Doc.parent cx.doc id <> Doc.no_node) ids
             in
             let ids = Doc.sort_doc_order cx.doc ids in
             XE.tick (1 + List.length ids);
             Some (List.map (fun n -> XE.Nodes [ n ]) ids))))

and eval_call cx env f args =
  let vals = List.map (eval_expr cx env) args in
  match (f, vals) with
  | "exists", [ v ] ->
    XE.Bool (match v with XE.Nodes ns -> ns <> [] | XE.Strs ss -> ss <> [] | v -> XE.boolean v)
  | "empty", [ v ] ->
    XE.Bool (match v with XE.Nodes ns -> ns = [] | XE.Strs ss -> ss = [] | v -> not (XE.boolean v))
  | "not", [ v ] -> XE.Bool (not (XE.boolean v))
  | "same-node", [ a; b ] ->
    (* node identity, existential over sequences (XQuery's [is] on the
       singletons the translation produces) *)
    (match (a, b) with
     | XE.Nodes xs, XE.Nodes ys ->
       XE.Bool (List.exists (fun x -> List.mem x ys) xs)
     | _ -> fail "same-node: expected node sequences")
  | "count", [ XE.Nodes ns ] -> XE.Num (float_of_int (List.length ns))
  | "count", [ XE.Strs ss ] -> XE.Num (float_of_int (List.length ss))
  | "count", [ _ ] -> XE.Num 1.0
  | "count-distinct", [ v ] ->
    (* The translation of the paper's [Cnt_D] aggregate. *)
    XE.Num (float_of_int (XE.distinct_count cx.doc v))
  | "sum", [ v ] ->
    let ss = XE.item_strings cx.doc v in
    XE.Num
      (List.fold_left
         (fun a s -> a +. (match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan))
         0.0 ss)
  | "boolean", [ v ] -> XE.Bool (XE.boolean v)
  | "string", [ v ] -> XE.Str (XE.string_value cx.doc v)
  | "number", [ v ] -> XE.Num (XE.number v)
  | _ ->
    (* Fall back to the XPath function library via pre-evaluated operand
       variables. *)
    let keys = List.mapi (fun i v -> ("%%arg" ^ string_of_int i, v)) vals in
    let env' = keys @ env in
    (try
       XE.eval cx.doc ~env:env' ~ctx:(Doc.root cx.doc) ?index:cx.idx
         (XP.Call (f, List.map (fun (k, _) -> XP.Var k) keys))
     with XE.Eval_error m -> raise (Eval_error m))

and bool_of cx env e = XE.boolean (eval_expr cx env e)

let eval doc ?(env = []) ?(params = []) ?index e =
  let env = List.map (fun (p, v) -> ("%" ^ p, v)) params @ env in
  eval_expr { doc; idx = index } env e

let eval_bool doc ?env ?params ?index e = XE.boolean (eval doc ?env ?params ?index e)
