open Xic_xml
module XE = Xic_xpath.Eval

type value = XE.value

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* Split a sequence value into the items bound one by one by [for] and
   quantifier variables. *)
let items (v : value) : value list =
  match v with
  | XE.Nodes ns -> List.map (fun n -> XE.Nodes [ n ]) ns
  | XE.Strs ss -> List.map (fun s -> XE.Str s) ss
  | XE.Bool _ | XE.Num _ | XE.Str _ -> [ v ]

let rec seq_append (a : value) (b : value) : value =
  match (a, b) with
  | XE.Nodes [], v | v, XE.Nodes [] -> v
  | XE.Strs [], v | v, XE.Strs [] -> v
  | XE.Nodes xs, XE.Nodes ys -> XE.Nodes (xs @ ys)
  | XE.Strs xs, XE.Strs ys -> XE.Strs (xs @ ys)
  | a, b ->
    (* Heterogeneous sequences degrade to their string items; only
       emptiness and comparison are observable in the generated queries. *)
    XE.Strs (string_items a @ string_items b)

and string_items = function
  | XE.Nodes ns -> List.map string_of_int ns
  | XE.Strs ss -> ss
  | XE.Bool b -> [ string_of_bool b ]
  | XE.Num f -> [ string_of_float f ]
  | XE.Str s -> [ s ]

let empty_seq : value = XE.Strs []

let with_budget = XE.with_budget

let rec eval_expr doc env (e : Ast.expr) : value =
  XE.tick 1;
  match e with
  | Ast.Xp x ->
    (try XE.eval doc ~env ~ctx:(Doc.root doc) x
     with XE.Eval_error m -> raise (Eval_error m))
  | Ast.Param p ->
    (match List.assoc_opt ("%" ^ p) env with
     | Some v -> v
     | None -> fail "unbound parameter %%%s" p)
  | Ast.Seq es ->
    List.fold_left (fun acc e -> seq_append acc (eval_expr doc env e)) empty_seq es
  | Ast.Binop (Xic_xpath.Ast.And, a, b) ->
    XE.Bool (bool_of doc env a && bool_of doc env b)
  | Ast.Binop (Xic_xpath.Ast.Or, a, b) ->
    XE.Bool (bool_of doc env a || bool_of doc env b)
  | Ast.Binop (((Xic_xpath.Ast.Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    XE.Bool (XE.compare_values doc op (eval_expr doc env a) (eval_expr doc env b))
  | Ast.Binop (op, a, b) ->
    (* Arithmetic and union delegate to the XPath evaluator's rules by
       re-wrapping pre-evaluated operands. *)
    let va = eval_expr doc env a and vb = eval_expr doc env b in
    let lift v name =
      let key = "%%tmp_" ^ name in
      (key, v)
    in
    let ka, va' = lift va "a" and kb, vb' = lift vb "b" in
    let env' = (ka, va') :: (kb, vb') :: env in
    (try
       XE.eval doc ~env:env' ~ctx:(Doc.root doc)
         (Xic_xpath.Ast.Binop (op, Xic_xpath.Ast.Var ka, Xic_xpath.Ast.Var kb))
     with XE.Eval_error m -> raise (Eval_error m))
  | Ast.If (c, t, f) ->
    if bool_of doc env c then eval_expr doc env t else eval_expr doc env f
  | Ast.Elem (tag, body) ->
    let parts =
      List.map (fun e -> XE.string_value doc (eval_expr doc env e)) body
    in
    let inner = String.concat "" parts in
    XE.Str
      (if inner = "" then "<" ^ tag ^ "/>" else "<" ^ tag ^ ">" ^ inner ^ "</" ^ tag ^ ">")
  | Ast.Quant (q, binds, cond) ->
    let rec go env = function
      | [] -> bool_of doc env cond
      | (v, e) :: rest ->
        let candidates = items (eval_expr doc env e) in
        let test item = go ((v, item) :: env) rest in
        (match q with
         | Ast.Some_ -> List.exists test candidates
         | Ast.Every -> List.for_all test candidates)
    in
    XE.Bool (go env binds)
  | Ast.Flwor (clauses, where, ret) ->
    let rec go env acc = function
      | [] ->
        let keep =
          match where with None -> true | Some w -> bool_of doc env w
        in
        if keep then seq_append acc (eval_expr doc env ret) else acc
      | Ast.For (v, e) :: rest ->
        List.fold_left
          (fun acc item -> go ((v, item) :: env) acc rest)
          acc
          (items (eval_expr doc env e))
      | Ast.Let (v, e) :: rest ->
        go ((v, eval_expr doc env e) :: env) acc rest
    in
    go env empty_seq clauses
  | Ast.Call (f, args) -> eval_call doc env f args

and eval_call doc env f args =
  let vals = List.map (eval_expr doc env) args in
  match (f, vals) with
  | "exists", [ v ] ->
    XE.Bool (match v with XE.Nodes ns -> ns <> [] | XE.Strs ss -> ss <> [] | v -> XE.boolean v)
  | "empty", [ v ] ->
    XE.Bool (match v with XE.Nodes ns -> ns = [] | XE.Strs ss -> ss = [] | v -> not (XE.boolean v))
  | "not", [ v ] -> XE.Bool (not (XE.boolean v))
  | "same-node", [ a; b ] ->
    (* node identity, existential over sequences (XQuery's [is] on the
       singletons the translation produces) *)
    (match (a, b) with
     | XE.Nodes xs, XE.Nodes ys ->
       XE.Bool (List.exists (fun x -> List.mem x ys) xs)
     | _ -> fail "same-node: expected node sequences")
  | "count", [ XE.Nodes ns ] -> XE.Num (float_of_int (List.length ns))
  | "count", [ XE.Strs ss ] -> XE.Num (float_of_int (List.length ss))
  | "count", [ _ ] -> XE.Num 1.0
  | "count-distinct", [ v ] ->
    (* Distinct count by string value: the translation of the paper's
       [Cnt_D] aggregate. *)
    let ss = XE.item_strings doc v in
    XE.Num (float_of_int (List.length (List.sort_uniq compare ss)))
  | "sum", [ v ] ->
    let ss = XE.item_strings doc v in
    XE.Num
      (List.fold_left
         (fun a s -> a +. (match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan))
         0.0 ss)
  | "boolean", [ v ] -> XE.Bool (XE.boolean v)
  | "string", [ v ] -> XE.Str (XE.string_value doc v)
  | "number", [ v ] -> XE.Num (XE.number v)
  | _ ->
    (* Fall back to the XPath function library via pre-evaluated operand
       variables. *)
    let keys = List.mapi (fun i v -> ("%%arg" ^ string_of_int i, v)) vals in
    let env' = keys @ env in
    (try
       XE.eval doc ~env:env' ~ctx:(Doc.root doc)
         (Xic_xpath.Ast.Call (f, List.map (fun (k, _) -> Xic_xpath.Ast.Var k) keys))
     with XE.Eval_error m -> raise (Eval_error m))

and bool_of doc env e = XE.boolean (eval_expr doc env e)

let eval doc ?(env = []) ?(params = []) e =
  let env = List.map (fun (p, v) -> ("%" ^ p, v)) params @ env in
  eval_expr doc env e

let eval_bool doc ?env ?params e = XE.boolean (eval doc ?env ?params e)
