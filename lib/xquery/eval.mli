(** Evaluation of the XQuery subset against a {!Xic_xml.Doc.t}.

    Values are shared with the XPath evaluator ({!Xic_xpath.Eval.value}).
    Element constructors evaluate to their serialized string form (the
    generated queries only ever test the emptiness of constructed
    sequences, e.g. [exists(for … return <idle/>)]). *)

open Xic_xml

type value = Xic_xpath.Eval.value

exception Eval_error of string

val with_budget : steps:int -> (unit -> 'a) -> 'a
(** Run [f] under a step budget shared with the XPath evaluator (FLWOR
    iterations, quantifier bindings and location-step work all count).
    Evaluation aborts with [Xic_xpath.Eval.Budget_exceeded] once [steps]
    are spent — the repository layer catches it and degrades the
    optimized check to the full check. *)

val with_meter : (unit -> 'a) -> 'a * int
(** [with_meter f] runs [f] and additionally returns the evaluation
    steps consumed ({!Xic_xpath.Eval.with_meter}); the budget shared
    with the XPath evaluator still applies if one is installed. *)

type compiled
(** A compiled denial-check plan: one AST walk interns every name,
    resolves quantifier/FLWOR narrowing plans and pre-compiles the
    embedded XPath expressions into closure pipelines; running the plan
    executes closures only.  A plan is immutable and can be run from
    several domains concurrently.  {!eval} is exactly [compile] followed
    by [run], so interpreted and compiled checking share one semantics by
    construction. *)

val compile : Ast.expr -> compiled

val run :
  Doc.t ->
  ?env:Xic_xpath.Eval.env ->
  ?params:(string * value) list ->
  ?index:Index.t ->
  compiled ->
  value
(** Run a compiled plan; arguments as {!eval}. *)

val run_bool :
  Doc.t ->
  ?env:Xic_xpath.Eval.env ->
  ?params:(string * value) list ->
  ?index:Index.t ->
  compiled ->
  bool
(** Run a compiled plan and coerce to a boolean ({!eval_bool}). *)

val eval :
  Doc.t ->
  ?env:Xic_xpath.Eval.env ->
  ?params:(string * value) list ->
  ?index:Index.t ->
  Ast.expr ->
  value
(** Evaluate an expression.  [params] binds the [%name] holes of generated
    queries (typically to [Nodes [n]] for node-valued parameters or
    [Str s] for data parameters).  When [index] is supplied, a small
    planner narrows [some $v in //tag satisfies …] bindings and FLWOR
    [for] clauses through the value indexes when an equality conjunct
    permits, and the XPath evaluator uses its own indexed fast paths;
    verdicts are always identical to the scan interpretation.
    @raise Eval_error on unbound variables/parameters. *)

val eval_bool :
  Doc.t ->
  ?env:Xic_xpath.Eval.env ->
  ?params:(string * value) list ->
  ?index:Index.t ->
  Ast.expr ->
  bool
(** Evaluate and coerce to a boolean (XPath [boolean()] rules).  This is
    the entry point used by integrity checking: [true] means the constraint
    is {e violated}. *)

val describe : Ast.expr -> string
(** Render the plan the compiler would build for [e] — per-binding index
    narrowing, the conjunct schedule with hoisted comparison operands,
    and the innermost-level hash join — as an indented text block for
    [xicheck --explain].  Purely static: nothing is evaluated. *)
