open Xic_xml

type content =
  | Elem of string * (string * string) list * content list
  | Text of string

type op =
  | Insert_after
  | Insert_before
  | Append
  | Remove

type modification = {
  op : op;
  select : Xic_xpath.Ast.expr;
  content : content list;
}

type t = modification list

exception Xupdate_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Xupdate_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let xupdate_ns = "xupdate:"

let strip_prefix name =
  let n = String.length xupdate_ns in
  if String.length name > n && String.sub name 0 n = xupdate_ns then
    Some (String.sub name n (String.length name - n))
  else None

let rec content_of_node doc id =
  match Doc.kind doc id with
  | Doc.Text s -> Text s
  | Doc.Element sym ->
    let tag = Doc.Symbol.name sym in
    (match strip_prefix tag with
     | Some "element" ->
       let name =
         match Doc.attr doc id "name" with
         | Some n -> n
         | None -> fail "xupdate:element without a name attribute"
       in
       (* xupdate:attribute children become attributes of the element, so
          serialized statements ({!to_string}) parse back for replay *)
       let is_attr k =
         Doc.is_element doc k && strip_prefix (Doc.name doc k) = Some "attribute"
       in
       let attr_kids, kids = List.partition is_attr (Doc.children doc id) in
       let attrs =
         List.map
           (fun a ->
             match Doc.attr doc a "name" with
             | Some n -> (n, Doc.text_content doc a)
             | None -> fail "xupdate:attribute without a name attribute")
           attr_kids
       in
       Elem (name, attrs, List.map (content_of_node doc) kids)
     | Some "text" -> Text (Doc.text_content doc id)
     | Some d -> fail "unsupported xupdate content directive %s" d
     | None ->
       Elem
         ( tag,
           Doc.attrs doc id,
           List.map (content_of_node doc) (Doc.children doc id) ))

let op_of_directive = function
  | "insert-after" -> Some Insert_after
  | "insert-before" -> Some Insert_before
  | "append" -> Some Append
  | "remove" -> Some Remove
  | _ -> None

let parse_select doc id =
  match Doc.attr doc id "select" with
  | None -> fail "xupdate directive without a select attribute"
  | Some s ->
    (try Xic_xpath.Parser.parse s
     with Xic_xpath.Parser.Parse_error m -> fail "bad select %S: %s" s m)

let parse_string src =
  let { Xml_parser.doc; _ } =
    try Xml_parser.parse_string src
    with Xml_parser.Parse_error { line; col; msg } ->
      fail "XML error at %d:%d: %s" line col msg
  in
  let root = Doc.root doc in
  (match Doc.kind doc root with
   | Doc.Element sym when strip_prefix (Doc.Symbol.name sym) = Some "modifications" -> ()
   | _ -> fail "expected an <xupdate:modifications> root element");
  List.filter_map
    (fun id ->
      if not (Doc.is_element doc id) then None
      else begin
        let tag = Doc.name doc id in
        match strip_prefix tag with
        | None -> fail "unexpected element <%s> among modifications" tag
        | Some d ->
          (match op_of_directive d with
           | None -> fail "unsupported xupdate operation %s" d
           | Some op ->
             let select = parse_select doc id in
             let content = List.map (content_of_node doc) (Doc.children doc id) in
             if op = Remove && content <> [] then
               fail "xupdate:remove does not take content";
             if op <> Remove && content = [] then
               fail "xupdate:%s requires content" d;
             Some { op; select; content })
      end)
    (Doc.children doc root)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec content_str buf = function
  | Text s -> Buffer.add_string buf (Xml_printer.escape_text s)
  | Elem (tag, attrs, kids) ->
    Buffer.add_string buf ("<xupdate:element name=\"" ^ tag ^ "\">");
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "<xupdate:attribute name=%S>%s</xupdate:attribute>" k
             (Xml_printer.escape_text v)))
      attrs;
    List.iter (content_str buf) kids;
    Buffer.add_string buf "</xupdate:element>"

let op_str = function
  | Insert_after -> "insert-after"
  | Insert_before -> "insert-before"
  | Append -> "append"
  | Remove -> "remove"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "<xupdate:modifications version=\"1.0\" \
     xmlns:xupdate=\"http://www.xmldb.org/xupdate\">";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "<xupdate:%s select=\"%s\"" (op_str m.op)
           (Xml_printer.escape_attr (Xic_xpath.Ast.to_string m.select)));
      if m.content = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_string buf ">";
        List.iter (content_str buf) m.content;
        Buffer.add_string buf ("</xupdate:" ^ op_str m.op ^ ">")
      end)
    t;
  Buffer.add_string buf "</xupdate:modifications>";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Application and rollback                                            *)
(* ------------------------------------------------------------------ *)

type undo_entry =
  | Inserted of Doc.node_id
  | Removed of {
      node : Doc.node_id;
      parent : Doc.node_id;
      prev_sibling : Doc.node_id option;  (* None: was first child *)
    }

type undo = undo_entry list  (* reverse application order *)

let rec materialize doc = function
  | Text s -> Doc.make_text doc s
  | Elem (tag, attrs, kids) ->
    let id = Doc.make_element doc ~attrs tag in
    List.iter
      (fun k -> Doc.append_child doc ~parent:id (materialize doc k))
      kids;
    id

let select_target ?index doc expr =
  match Xic_xpath.Eval.eval doc ?index expr with
  | Xic_xpath.Eval.Nodes (n :: _) -> n
  | Xic_xpath.Eval.Nodes [] ->
    fail "select %s matched no node" (Xic_xpath.Ast.to_string expr)
  | _ -> fail "select %s did not produce a node-set" (Xic_xpath.Ast.to_string expr)
  | exception Xic_xpath.Eval.Eval_error m -> fail "select evaluation failed: %s" m

let apply_one ?index doc m acc =
  let target = select_target ?index doc m.select in
  match m.op with
  | Remove ->
    let parent = Doc.parent doc target in
    if parent = Doc.no_node then fail "cannot remove a root element";
    let prev_sibling =
      match Doc.preceding_siblings doc target with
      | [] -> None
      | l -> Some (List.nth l (List.length l - 1))
    in
    Doc.detach doc target;
    Removed { node = target; parent; prev_sibling } :: acc
  | Append ->
    List.fold_left
      (fun acc c ->
        let id = materialize doc c in
        Doc.append_child doc ~parent:target id;
        Inserted id :: acc)
      acc m.content
  | Insert_after | Insert_before ->
    if Doc.parent doc target = Doc.no_node then
      fail "cannot insert a sibling of a root element";
    (* For insert-after, successive fragments keep their order by always
       anchoring on the previously inserted node. *)
    (match m.op with
     | Insert_after ->
       let _, acc =
         List.fold_left
           (fun (anchor, acc) c ->
             let id = materialize doc c in
             Doc.insert_after doc ~anchor id;
             (id, Inserted id :: acc))
           (target, acc) m.content
       in
       acc
     | Insert_before ->
       List.fold_left
         (fun acc c ->
           let id = materialize doc c in
           Doc.insert_before doc ~anchor:target id;
           Inserted id :: acc)
         acc m.content
     | _ -> assert false)

let rollback doc undo =
  List.iter
    (function
      | Inserted id -> Doc.delete_subtree doc id
      | Removed { node; parent; prev_sibling } ->
        (match prev_sibling with
         | Some anchor -> Doc.insert_after doc ~anchor node
         | None ->
           (match Doc.children doc parent with
            | [] -> Doc.append_child doc ~parent node
            | first :: _ -> Doc.insert_before doc ~anchor:first node)))
    undo

(* Atomic: when a later modification fails (say, its select matches no
   node) the already-applied prefix is rolled back before the error
   propagates, so a failed statement never leaves the document half
   updated. *)
let apply ?index doc t =
  let rec go acc = function
    | [] -> acc
    | m :: rest ->
      (match apply_one ?index doc m acc with
       | acc -> go acc rest
       | exception e ->
         rollback doc acc;
         raise e)
  in
  go [] t

let inserted_nodes undo =
  List.rev (List.filter_map (function Inserted id -> Some id | Removed _ -> None) undo)

let removed_nodes undo =
  List.rev
    (List.filter_map (function Removed { node; _ } -> Some node | Inserted _ -> None) undo)
