(** XUpdate subset (Laux & Martin, 2000): parsing, application with undo,
    and serialization.

    Supported operations: [insert-after], [insert-before], [append]
    (content inserted as last children of the target) and [remove].
    Content is given by [xupdate:element], [xupdate:text] directives or
    literal XML fragments, as in the paper's Section 4.1 example. *)

open Xic_xml

(** Content template of an insertion. *)
type content =
  | Elem of string * (string * string) list * content list
  | Text of string

type op =
  | Insert_after
  | Insert_before
  | Append
  | Remove

type modification = {
  op : op;
  select : Xic_xpath.Ast.expr;  (** target node selection *)
  content : content list;       (** empty for [Remove] *)
}

type t = modification list

exception Xupdate_error of string

val parse_string : string -> t
(** Parse an [<xupdate:modifications>] document.
    @raise Xupdate_error on unsupported or malformed directives. *)

val to_string : t -> string
(** Serialize back to XUpdate XML. *)

(** Undo information returned by {!apply}. *)
type undo

val apply : ?index:Index.t -> Doc.t -> t -> undo
(** Execute all modifications in order.  Each [select] must resolve to at
    least one node; the modification applies to the first selected node
    (document order).  Atomic: if a modification fails, the already
    applied prefix is rolled back before the error propagates.  [index]
    only accelerates target selection — index {e maintenance} is wired at
    the {!Doc.set_observer} level, so application, {!rollback} and
    savepoint/crash recovery keep any index consistent with or without
    it.
    @raise Xupdate_error when the target is missing or the operation is
    ill-formed (e.g. insert-after on a root). *)

val rollback : Doc.t -> undo -> unit
(** Restore the document to its pre-{!apply} state (the paper's
    "compensating action").  Must be applied to the same document, most
    recent application first if several are pending. *)

val inserted_nodes : undo -> Doc.node_id list
(** Top-level nodes that were inserted by the application (used to mirror
    the update into the relational store). *)

val removed_nodes : undo -> Doc.node_id list

val materialize : Doc.t -> content -> Doc.node_id
(** Build a detached subtree for a content template inside the arena. *)

val content_of_node : Doc.t -> Doc.node_id -> content
(** Read back a subtree as a content template (used by pattern
    matching). *)
