module T = Xic_datalog.Term

type update = T.atom list

let simp ?(hypotheses = []) ?(deletions = []) ~update gamma =
  Xic_obs.Obs.Trace.with_span "simplify"
    ~attrs:[ ("constraints", string_of_int (List.length gamma)) ]
    (fun () ->
      let after =
        if deletions = [] then After.denials update gamma
        else After.denials_mixed ~ins:update ~del:deletions gamma
      in
      Optimize.optimize ~hypotheses:(hypotheses @ gamma) after)

let anon_args n = List.init n (fun _ -> T.Var (T.fresh_var ~base:"_F" ()))

let freshness_hypotheses ~fresh ~children ~arity update =
  List.concat_map
    (fun (a : T.atom) ->
      match a.T.args with
      | T.Param k :: _ when List.mem k fresh ->
        let own =
          (* :- p(%k, _, …) — no existing tuple carries the new id. *)
          let n = arity a.T.pred in
          T.denial
            [ T.Rel { T.pred = a.T.pred; T.args = T.Param k :: anon_args (n - 1) } ]
        in
        let referencing =
          (* :- q(_, _, %k, …) — nothing has the new node as parent. *)
          List.map
            (fun (q, n) ->
              T.denial
                [ T.Rel
                    { T.pred = q;
                      T.args =
                        (match anon_args (n - 1) with
                         | x1 :: x2 :: rest -> x1 :: x2 :: T.Param k :: rest
                         | _ -> invalid_arg "freshness_hypotheses: arity < 3");
                    } ])
            (children a.T.pred)
        in
        own :: referencing
      | _ -> [])
    update
