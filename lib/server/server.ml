module R = Xic_core.Repository
module XU = Xic_xupdate.Xupdate
module J = Xic_journal.Journal
module FP = Xic_journal.Failpoint
module Obs = Xic_obs.Obs
module P = Protocol

(* Crash window of the graceful-shutdown path, for the torture tests. *)
let () = FP.declare "serve_shutdown"

module XLog = Xic_obs.Log

module Log = struct
  let src = "xic.server"
  let debug f = XLog.debug ~src f
  let info f = XLog.info ~src f
  let warn f = XLog.warn ~src f
end

(* Point-in-time server gauges, synced into the registry before every
   stats/metrics exposition so a Prometheus scrape sees live values. *)
let g_open_txns = Obs.Metrics.gauge "serve_open_txns"
let g_pins = Obs.Metrics.gauge "serve_pinned_generations"
let g_journal_bytes = Obs.Metrics.gauge "serve_journal_bytes_since_checkpoint"
let g_store_facts = Obs.Metrics.gauge "serve_store_facts"
let g_connections = Obs.Metrics.gauge "serve_connections"

(* COW-versioning gauges: how many generations the repository retains
   (in-flight pins plus time-travel history) and a rough estimate of the
   heap they hold beyond what they share with the live store.  Exported
   as xic_serve_retained_generations / xic_serve_pin_bytes. *)
let g_retained = Obs.Metrics.gauge "serve_retained_generations"
let g_pin_bytes = Obs.Metrics.gauge "serve_pin_bytes"

type config = {
  journal : J.t option;
  snapshot_path : string option;
  checkpoint_on_shutdown : bool;
  fallback : [ `Full_check | `Runtime_simplification ];
  slow_capacity : int;
}

let default_config =
  { journal = None; snapshot_path = None; checkpoint_on_shutdown = false;
    fallback = `Full_check; slow_capacity = 8 }

(* One entry of the slowest-requests ring: everything needed to explain
   the request after the fact — including its span tree when request
   tracing was on. *)
type slow_entry = {
  se_op : string;
  se_trace_id : string option;
  se_span_id : string;
  se_ms : float;
  se_args : string;            (* the request document, truncated *)
  se_span : Obs.Trace.span option;
}

type t = {
  srepo : R.t;
  config : config;
  started_ns : int64;
  mutable requests : int;
  mutable batches : int;          (* guard runs applied via guarded_batch *)
  mutable batched_guards : int;   (* guard requests inside those runs *)
  (* the single streaming writer: (client-visible handle, transaction) *)
  mutable open_txn : (int * R.txn) option;
  mutable next_txn : int;
  pins : (int, R.pin) Hashtbl.t;
  mutable next_pin : int;
  (* cache of the last committed generation's pin, serving plain checks
     while the streaming transaction is open *)
  mutable last_pin : R.pin option;
  stop : bool ref;
  mutable shut : bool;
  op_hists : (string, Obs.Metrics.histogram) Hashtbl.t;
  mutable next_span : int;        (* server-side span-id generator *)
  (* request spans captured while tracing is enabled, newest-first,
     trimmed to [spans_cap] roots *)
  mutable spans : Obs.Trace.span list;
  mutable spans_n : int;
  spans_cap : int;
  (* the N slowest requests, worst-first *)
  mutable slow : slow_entry list;
  mutable connections : int;
}

let create ?(config = default_config) repo =
  (* spans completed before the server existed (document load, journal
     replay) belong to the serve-session trace too *)
  let preload = if Obs.Trace.is_enabled () then Obs.Trace.drain () else [] in
  { srepo = repo; config; started_ns = Obs.Clock.now_ns (); requests = 0;
    batches = 0; batched_guards = 0; open_txn = None; next_txn = 1;
    pins = Hashtbl.create 8; next_pin = 1; last_pin = None; stop = ref false;
    shut = false; op_hists = Hashtbl.create 8; next_span = 1;
    spans = List.rev preload; spans_n = List.length preload;
    spans_cap = 4096; slow = []; connections = 0 }

let repo t = t.srepo
let requests t = t.requests
let request_stop t = t.stop := true
let stop_requested t = !(t.stop)

(* Completed request spans (plus pre-serve load spans), oldest first —
   the serve session's Chrome-trace export. *)
let trace_roots t = List.rev t.spans

let fresh_span_id t =
  let id = t.next_span in
  t.next_span <- id + 1;
  Printf.sprintf "s%06x" id

let push_spans t roots =
  t.spans <- List.rev_append roots t.spans;
  t.spans_n <- t.spans_n + List.length roots;
  (* amortized trim: cut back to the cap only after 2x overshoot *)
  if t.spans_n > 2 * t.spans_cap then begin
    t.spans <- List.filteri (fun i _ -> i < t.spans_cap) t.spans;
    t.spans_n <- t.spans_cap
  end

(* Would a request of [ms] enter the slowest-N ring?  The ring is
   worst-first, so the cutoff is its last entry; checking before
   building the entry keeps the fast path free of the request-document
   rendering below. *)
let slow_qualifies t ms =
  let cap = max 1 t.config.slow_capacity in
  let n = List.length t.slow in
  n < cap || ms > (List.nth t.slow (n - 1)).se_ms

(* Record a request in the slowest-N ring (worst-first, fixed size). *)
let note_slow t entry =
  let cap = max 1 t.config.slow_capacity in
  let rec insert = function
    | [] -> [ entry ]
    | e :: rest when entry.se_ms > e.se_ms -> entry :: e :: rest
    | e :: rest -> e :: insert rest
  in
  let rec trim n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: trim (n - 1) rest
  in
  t.slow <- trim cap (insert t.slow)

let req_summary req =
  let s = P.to_string req in
  if String.length s <= 512 then s else String.sub s 0 509 ^ "..."

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let ok fields = P.Obj (("ok", P.Bool true) :: fields)
let error msg = P.Obj [ ("ok", P.Bool false); ("error", P.String msg) ]

let outcome_fields = function
  | R.Applied s ->
    [ ("outcome", P.String "applied");
      ( "strategy",
        P.String
          (match s with
           | `Optimized -> "optimized"
           | `Runtime_simplified -> "runtime_simplified"
           | `Full_check -> "full_check") ) ]
  | R.Rejected_early c ->
    [ ("outcome", P.String "rejected"); ("constraint", P.String c) ]
  | R.Rolled_back c ->
    [ ("outcome", P.String "rolled_back"); ("constraint", P.String c) ]

let report_json ?(extra = []) (r : R.report) =
  let degs =
    match r.R.degradations with
    | [] -> []
    | ds ->
      [ ( "degradations",
          P.List
            (List.map
               (fun (d : R.degradation) ->
                 P.Obj
                   [ ("check", P.String d.R.failed_check);
                     ("reason", P.String d.R.reason) ])
               ds) ) ]
  in
  ok (outcome_fields r.R.outcome @ degs @ extra)

let check_response ~isolation ~generation violated =
  ok
    [ ("consistent", P.Bool (violated = []));
      ("violated", P.List (List.map (fun v -> P.String v) violated));
      ("generation", P.Int generation);
      ("isolation", P.String isolation) ]

(* ------------------------------------------------------------------ *)
(* State helpers                                                       *)
(* ------------------------------------------------------------------ *)

(* Verdict over the live state, routed like the CLI's post-state check:
   materialized views when incremental checking is on, full check as
   the fallback. *)
let live_check t =
  if R.incremental t.srepo then (
    try
      let v = R.check_incremental t.srepo in
      Obs.Trace.add_attr "route" "incremental";
      v
    with Xic_datalog.Eval.Unsafe _ | Xic_datalog.Eval.Budget_exceeded ->
      Obs.Trace.add_attr "route" "recompute";
      R.check_full t.srepo)
  else begin
    Obs.Trace.add_attr "route" "full";
    R.check_full t.srepo
  end

(* The last committed generation's pin.  Refreshed only while no
   transaction is open (pinning mid-transaction would capture
   uncommitted statements); [txn_begin] takes one eagerly so it is
   always available while the writer runs. *)
let committed_pin t =
  match t.last_pin with
  | Some p when R.pin_generation p = R.generation t.srepo -> p
  | _ ->
    if t.open_txn <> None then
      failwith "internal: no committed pin while a transaction is open";
    let p = R.pin t.srepo in
    (* release the superseded generation's reference: it becomes
       bounded time-travel history in the retained table *)
    (match t.last_pin with Some old -> R.unpin t.srepo old | None -> ());
    t.last_pin <- Some p;
    p

(* Drop the committed-pin cache entirely (checkpoint eviction). *)
let evict_committed_pin t =
  match t.last_pin with
  | Some p ->
    t.last_pin <- None;
    R.unpin t.srepo p
  | None -> ()

let fallback_of t req =
  match P.string_field "fallback" req with
  | Some "runtime" -> `Runtime_simplification
  | Some "full" -> `Full_check
  | _ -> t.config.fallback

let parse_update ustr = XU.parse_string ustr

let require_update req =
  match P.string_field "update" req with
  | Some u -> u
  | None -> raise (P.Protocol_error "missing \"update\" field")

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let do_check t req =
  match (P.int_field "pin" req, P.int_field "as_of" req) with
  | Some _, Some _ ->
    error "check: \"pin\" and \"as_of\" are mutually exclusive"
  | Some id, None ->
    (match Hashtbl.find_opt t.pins id with
     | None -> error (Printf.sprintf "unknown pin %d" id)
     | Some p ->
       Obs.Trace.add_attr "route" "pinned";
       Obs.Trace.add_attr "pin" (string_of_int id);
       check_response ~isolation:"pinned" ~generation:(R.pin_generation p)
         (R.check_pinned t.srepo p))
  | None, Some g ->
    (* time travel: the verdict at a retained past generation *)
    (match R.check_as_of t.srepo g with
     | None -> error (Printf.sprintf "generation %d is not retained" g)
     | Some violated ->
       Obs.Trace.add_attr "route" "as_of";
       check_response ~isolation:"as_of" ~generation:g violated)
  | None, None ->
    (match t.open_txn with
     | Some _ ->
       (* snapshot isolation: a plain read never observes the open
          writer's uncommitted statements *)
       let p = committed_pin t in
       Obs.Trace.add_attr "route" "pinned";
       check_response ~isolation:"pinned" ~generation:(R.pin_generation p)
         (R.check_pinned t.srepo p)
     | None ->
       check_response ~isolation:"live" ~generation:(R.generation t.srepo)
         (live_check t))

let require_no_txn t what =
  if t.open_txn <> None then
    raise (P.Protocol_error (what ^ ": a streaming transaction is open"))

(* The check route a guarded update actually took, for the span. *)
let route_of_outcome = function
  | R.Applied `Optimized -> "compiled"
  | R.Applied `Runtime_simplified -> "runtime_simplified"
  | R.Applied `Full_check -> "recompute"
  | R.Rejected_early _ -> "rejected"
  | R.Rolled_back _ -> "rolled_back"

let do_guard t req =
  require_no_txn t "guard";
  let u = parse_update (require_update req) in
  let r =
    R.guarded_update_report ~fallback:(fallback_of t req)
      ?journal:t.config.journal t.srepo u
  in
  Obs.Trace.add_attr "route" (route_of_outcome r.R.outcome);
  report_json r ~extra:[ ("generation", P.Int (R.generation t.srepo)) ]

let do_txn t req =
  require_no_txn t "txn";
  let updates =
    match P.list_field "updates" req with
    | Some l ->
      List.map
        (function
          | P.String u -> parse_update u
          | _ -> raise (P.Protocol_error "\"updates\" must be strings"))
        l
    | None -> raise (P.Protocol_error "missing \"updates\" field")
  in
  let fallback = fallback_of t req in
  let reports =
    if P.bool_field "abort" req then begin
      (* apply-then-abort, for exercising the rollback path end to end *)
      let tx = R.begin_txn ?journal:t.config.journal t.srepo in
      let rs = List.map (fun u -> R.txn_apply_report ~fallback tx u) updates in
      R.rollback_txn tx;
      rs
    end
    else R.guarded_batch ~fallback ?journal:t.config.journal t.srepo updates
  in
  ok
    [ ("results", P.List (List.map (fun r -> report_json r) reports));
      ("committed", P.Bool (not (P.bool_field "abort" req)));
      ("generation", P.Int (R.generation t.srepo)) ]

let do_txn_begin t =
  match t.open_txn with
  | Some (h, _) ->
    error (Printf.sprintf "transaction %d is already open" h)
  | None ->
    (* pin the committed state first: reads during the transaction are
       served from it *)
    ignore (committed_pin t);
    let tx = R.begin_txn ?journal:t.config.journal t.srepo in
    let h = t.next_txn in
    t.next_txn <- h + 1;
    t.open_txn <- Some (h, tx);
    ok [ ("txn", P.Int h); ("generation", P.Int (R.generation t.srepo)) ]

let with_open_txn t req f =
  match (t.open_txn, P.int_field "txn" req) with
  | None, _ -> error "no open transaction"
  | Some (h, _), Some h' when h <> h' ->
    error (Printf.sprintf "transaction %d is not open (current: %d)" h' h)
  | Some (h, tx), _ -> f h tx

let do_txn_stmt t req =
  with_open_txn t req @@ fun _h tx ->
  let u = parse_update (require_update req) in
  let r = R.txn_apply_report ~fallback:(fallback_of t req) tx u in
  report_json r ~extra:[ ("statements", P.Int (R.txn_statements tx)) ]

let do_txn_commit t req =
  with_open_txn t req @@ fun h tx ->
  let n = R.txn_statements tx in
  t.open_txn <- None;
  R.commit_txn tx;
  ignore (R.store t.srepo);  (* one composed flush for the whole txn *)
  ok
    [ ("txn", P.Int h); ("committed", P.Bool true); ("statements", P.Int n);
      ("generation", P.Int (R.generation t.srepo)) ]

let do_txn_abort t req =
  with_open_txn t req @@ fun h tx ->
  t.open_txn <- None;
  R.rollback_txn tx;
  ok [ ("txn", P.Int h); ("aborted", P.Bool true) ]

let do_pin t req =
  let pinned =
    match P.int_field "generation" req with
    | Some g ->
      (* time-travel pin of a retained past generation *)
      (match R.pin_as_of t.srepo g with
       | Some p -> Ok p
       | None -> Error (Printf.sprintf "generation %d is not retained" g))
    | None ->
      (* while a writer runs, a new pin sees the committed state; the
         extra reference keeps the generation retained until unpin *)
      if t.open_txn <> None then
        let p = committed_pin t in
        Ok (Option.get (R.pin_as_of t.srepo (R.pin_generation p)))
      else Ok (R.pin t.srepo)
  in
  match pinned with
  | Error m -> error m
  | Ok p ->
    let id = t.next_pin in
    t.next_pin <- id + 1;
    Hashtbl.replace t.pins id p;
    ok [ ("pin", P.Int id); ("generation", P.Int (R.pin_generation p)) ]

let do_unpin t req =
  match P.int_field "pin" req with
  | None -> raise (P.Protocol_error "missing \"pin\" field")
  | Some id ->
    (match Hashtbl.find_opt t.pins id with
     | None -> error (Printf.sprintf "unknown pin %d" id)
     | Some p ->
       Hashtbl.remove t.pins id;
       R.unpin t.srepo p;
       ok [ ("unpinned", P.Int id) ])

(* The retained-generation table: every generation still materialized —
   by in-flight pins (refs > 0) or as time-travel history (refs = 0) —
   plus the memory those handles hold beyond the live store. *)
let do_history t =
  ok
    [ ("generation", P.Int (R.generation t.srepo));
      ( "retained",
        P.List
          (List.map
             (fun (g, refs) ->
               P.Obj [ ("generation", P.Int g); ("refs", P.Int refs) ])
             (R.retained_generations t.srepo)) );
      ("pin_bytes", P.Int (R.retained_bytes t.srepo)) ]

let do_checkpoint t req =
  require_no_txn t "checkpoint";
  let path =
    match P.string_field "path" req with
    | Some p -> p
    | None ->
      (match t.config.snapshot_path with
       | Some p -> p
       | None -> raise (P.Protocol_error "checkpoint: no snapshot path"))
  in
  (* the cached committed pin is released before the checkpoint prunes
     the retained table, so the snapshot leaves no zero-ref history
     behind; the next read re-pins the (now checkpointed) state O(1) *)
  evict_committed_pin t;
  let r = R.checkpoint ?journal:t.config.journal t.srepo path in
  ok
    [ ("path", P.String r.R.snapshot_path);
      ("bytes", P.Int r.R.snapshot_bytes);
      ("nodes", P.Int r.R.snapshot_nodes);
      ("facts", P.Int r.R.snapshot_facts);
      ("wal_entries_folded", P.Int r.R.wal_entries_folded);
      ("wal_reset", P.Bool r.R.wal_reset) ]

(* Refresh the point-in-time serve gauges so stats / Prometheus
   expositions see live values. *)
let sync_gauges t =
  Obs.Metrics.set g_open_txns (if t.open_txn = None then 0 else 1);
  Obs.Metrics.set g_pins (Hashtbl.length t.pins);
  Obs.Metrics.set g_journal_bytes
    (match t.config.journal with Some j -> J.bytes j | None -> 0);
  Obs.Metrics.set g_store_facts
    (Xic_datalog.Store.total_tuples (R.store t.srepo));
  Obs.Metrics.set g_retained
    (List.length (R.retained_generations t.srepo));
  Obs.Metrics.set g_pin_bytes (R.retained_bytes t.srepo);
  Obs.Metrics.set g_connections t.connections

(* Per-op latency quantiles straight from the serve_<op>_ms histograms,
   surfaced in the stats response so clients need no histogram math. *)
let op_quantiles t =
  let ops =
    Hashtbl.fold (fun op h acc -> (op, Obs.Metrics.hsnap h) :: acc) t.op_hists []
    |> List.filter (fun (_, (s : Obs.Metrics.hsnap)) -> s.Obs.Metrics.count > 0)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  P.Obj
    (List.map
       (fun (op, s) ->
         ( op,
           P.Obj
             [ ("count", P.Int s.Obs.Metrics.count);
               ("p50_ms", P.Float (Obs.Metrics.hsnap_quantile s 0.5));
               ("p90_ms", P.Float (Obs.Metrics.hsnap_quantile s 0.9));
               ("p99_ms", P.Float (Obs.Metrics.hsnap_quantile s 0.99)) ] ))
       ops)

let do_stats t =
  sync_gauges t;
  let uptime_s =
    Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t.started_ns) /. 1e9
  in
  let d = R.delta_stats t.srepo in
  ok
    [ ( "server",
        P.Obj
          [ ("uptime_s", P.Float uptime_s);
            ("requests", P.Int t.requests);
            ( "requests_per_sec",
              P.Float
                (if uptime_s > 0. then float_of_int t.requests /. uptime_s
                 else 0.) );
            ("batches", P.Int t.batches);
            ("batched_guards", P.Int t.batched_guards);
            ("generation", P.Int (R.generation t.srepo));
            ("pins", P.Int (Hashtbl.length t.pins));
            ( "retained_generations",
              P.Int (List.length (R.retained_generations t.srepo)) );
            ("open_txn", P.Bool (t.open_txn <> None));
            ("incremental", P.Bool (R.incremental t.srepo)) ] );
      ("ops", op_quantiles t);
      ( "delta",
        P.Obj
          [ ("flushes", P.Int d.R.delta_flushes);
            ("net_added", P.Int d.R.delta_net_added);
            ("net_removed", P.Int d.R.delta_net_removed) ] );
      (* the exact document the CLI's --metrics prints: one formatter,
         one schema (per-op serve_*_ms histograms included) *)
      ("metrics", P.Raw (R.metrics_json t.srepo)) ]

let do_metrics t =
  sync_gauges t;
  ok
    [ ("format", P.String "prometheus");
      ("body", P.String (R.metrics_prometheus t.srepo)) ]

let rec span_json (s : Obs.Trace.span) =
  P.Obj
    [ ("name", P.String s.Obs.Trace.name);
      ("ms", P.Float (Obs.Trace.duration_ms s));
      ( "attrs",
        P.Obj
          (List.rev_map (fun (k, v) -> (k, P.String v)) s.Obs.Trace.attrs) );
      ("children", P.List (List.rev_map span_json s.Obs.Trace.children)) ]

let do_slow t =
  ok
    [ ("capacity", P.Int (max 1 t.config.slow_capacity));
      ( "slow",
        P.List
          (List.map
             (fun e ->
               P.Obj
                 ([ ("op", P.String e.se_op);
                    ("ms", P.Float e.se_ms);
                    ("span_id", P.String e.se_span_id) ]
                 @ (match e.se_trace_id with
                    | Some id -> [ ("trace_id", P.String id) ]
                    | None -> [])
                 @ [ ("request", P.String e.se_args) ]
                 @ (match e.se_span with
                    | Some s -> [ ("span", span_json s) ]
                    | None -> [])))
             t.slow) ) ]

let dispatch t op req =
  match op with
  | "ping" -> ok [ ("pong", P.Bool true); ("protocol", P.Int P.version) ]
  | "check" -> do_check t req
  | "guard" -> do_guard t req
  | "txn" -> do_txn t req
  | "txn_begin" -> do_txn_begin t
  | "txn_stmt" -> do_txn_stmt t req
  | "txn_commit" -> do_txn_commit t req
  | "txn_abort" -> do_txn_abort t req
  | "pin" -> do_pin t req
  | "unpin" -> do_unpin t req
  | "history" -> do_history t
  | "checkpoint" -> do_checkpoint t req
  | "stats" -> do_stats t
  | "metrics" -> do_metrics t
  | "slow" -> do_slow t
  | "shutdown" ->
    request_stop t;
    ok [ ("stopping", P.Bool true) ]
  | "_parse_error" ->
    error
      (match P.string_field "error" req with
       | Some m -> "bad request: " ^ m
       | None -> "bad request")
  | op -> error (Printf.sprintf "unknown op %S" op)

let op_hist t op =
  match Hashtbl.find_opt t.op_hists op with
  | Some h -> h
  | None ->
    let sane =
      String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
        op
    in
    let h = Obs.Metrics.histogram (Printf.sprintf "serve_%s_ms" sane) in
    Hashtbl.replace t.op_hists op h;
    h

let resp_ok = function
  | P.Obj (("ok", P.Bool b) :: _) -> b
  | _ -> false

(* Echo the caller's trace_id (if any) and the server-assigned span_id
   on a response, so both sides of the wire name the same request. *)
let echo_trace ~trace_id ~span_id = function
  | P.Obj fields ->
    P.Obj
      (fields
      @ (match trace_id with
         | Some id -> [ ("trace_id", P.String id) ]
         | None -> [])
      @ [ ("span_id", P.String span_id) ])
  | other -> other

(* The request span just completed: the serve loop keeps no span open
   between requests, so the last drained root is this request's. *)
let capture_request_span t =
  if Obs.Trace.is_enabled () then
    match Obs.Trace.drain () with
    | [] -> None
    | roots ->
      push_spans t roots;
      Some (List.nth roots (List.length roots - 1))
  else None

let handle t req =
  t.requests <- t.requests + 1;
  let op =
    match P.string_field "op" req with Some o -> o | None -> "_missing_op"
  in
  let trace_id = P.string_field "trace_id" req in
  let parent_span = P.string_field "span_id" req in
  let span_id = fresh_span_id t in
  XLog.set_trace_id (Some (Option.value trace_id ~default:span_id));
  Fun.protect ~finally:(fun () -> XLog.set_trace_id None) @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let run () =
    try dispatch t op req with
    | R.Repository_error m -> error m
    | XU.Xupdate_error m -> error ("xupdate: " ^ m)
    | P.Protocol_error m -> error m
    | J.Journal_error m -> error ("journal: " ^ m)
    | Xic_datalog.Eval.Unsafe m -> error ("unsafe denial: " ^ m)
  in
  let resp =
    if Obs.Trace.is_enabled () then
      Obs.Trace.with_span ~slow:true
        ~attrs:
          ([ ("op", op);
             ("span_id", span_id);
             ("generation", string_of_int (R.generation t.srepo)) ]
          @ (match trace_id with
             | Some id -> [ ("trace_id", id) ]
             | None -> [])
          @ (match parent_span with
             | Some id -> [ ("parent_span_id", id) ]
             | None -> []))
        ("serve:" ^ op)
        (fun () ->
          let r = run () in
          Obs.Trace.add_attr "ok" (string_of_bool (resp_ok r));
          r)
    else run ()
  in
  let dt_ns = Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0) in
  Obs.Metrics.observe_ns (op_hist t op) dt_ns;
  let ms = float_of_int dt_ns /. 1e6 in
  let span = capture_request_span t in
  if slow_qualifies t ms then
    note_slow t
      { se_op = op; se_trace_id = trace_id; se_span_id = span_id; se_ms = ms;
        se_args = req_summary req; se_span = span };
  Log.debug (fun m ->
      m "%s span=%s ok=%b %.3fms" op span_id (resp_ok resp) ms);
  echo_trace ~trace_id ~span_id resp

(* ------------------------------------------------------------------ *)
(* Round processing with guard batching                                *)
(* ------------------------------------------------------------------ *)

let is_guard req = P.string_field "op" req = Some "guard"

(* A run of >= 2 guard requests becomes one guarded_batch: a single
   journaled transaction (one commit fsync), per-statement verdicts
   identical to serial dispatch, and one composed delta flush for runs
   of pre-checked statements.  Requests that fail to parse get error
   responses and drop out of the batch.  The run shares the fallback of
   its first request. *)
let handle_guard_run t reqs =
  match reqs with
  | [ req ] -> [ handle t req ]
  | [] -> []
  | first :: _ ->
    let n = List.length reqs in
    t.requests <- t.requests + n;
    t.batches <- t.batches + 1;
    t.batched_guards <- t.batched_guards + n;
    let span_id = fresh_span_id t in
    let member_traces =
      List.filter_map (fun r -> P.string_field "trace_id" r) reqs
    in
    XLog.set_trace_id
      (Some (match member_traces with id :: _ -> id | [] -> span_id));
    Fun.protect ~finally:(fun () -> XLog.set_trace_id None) @@ fun () ->
    let t0 = Obs.Clock.now_ns () in
    let run () =
      let parsed =
        List.map
          (fun req ->
            match P.string_field "update" req with
            | None -> Error (error "missing \"update\" field")
            | Some ustr ->
              (match parse_update ustr with
               | u -> Ok u
               | exception XU.Xupdate_error m ->
                 Error (error ("xupdate: " ^ m))))
          reqs
      in
      let us =
        List.filter_map (function Ok u -> Some u | Error _ -> None) parsed
      in
      match
        R.guarded_batch ~fallback:(fallback_of t first)
          ?journal:t.config.journal t.srepo us
      with
      | exception R.Repository_error m ->
        List.map (fun _ -> error m) reqs
      | reports ->
        let gen = R.generation t.srepo in
        let extra = [ ("generation", P.Int gen); ("batched", P.Bool true) ] in
        let rec merge parsed reports acc =
          match (parsed, reports) with
          | [], [] -> List.rev acc
          | Error resp :: rest, reports -> merge rest reports (resp :: acc)
          | Ok _ :: rest, r :: reports ->
            merge rest reports (report_json ~extra r :: acc)
          | Ok _ :: _, [] | [], _ :: _ -> assert false
        in
        merge parsed reports []
    in
    let resps =
      if Obs.Trace.is_enabled () then
        Obs.Trace.with_span ~slow:true
          ~attrs:
            ([ ("op", "guard_batch");
               ("span_id", span_id);
               ("batch", string_of_int n);
               ("generation", string_of_int (R.generation t.srepo)) ]
            @
            match member_traces with
            | [] -> []
            | ids -> [ ("trace_ids", String.concat "," ids) ])
          "serve:guard_batch" run
      else run ()
    in
    let dt_ns = Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0) in
    Obs.Metrics.observe_ns (op_hist t "guard_batch") dt_ns;
    let ms = float_of_int dt_ns /. 1e6 in
    let span = capture_request_span t in
    if slow_qualifies t ms then
      note_slow t
        { se_op = "guard_batch";
          se_trace_id =
            (match member_traces with id :: _ -> Some id | [] -> None);
          se_span_id = span_id; se_ms = ms;
          se_args =
            Printf.sprintf "batch of %d guards; first: %s" n
              (req_summary first);
          se_span = span };
    Log.debug (fun m -> m "guard_batch n=%d span=%s %.3fms" n span_id ms);
    List.map2
      (fun req resp ->
        echo_trace ~trace_id:(P.string_field "trace_id" req) ~span_id resp)
      reqs resps

let handle_round t reqs =
  let rec take_guards acc = function
    | req :: rest when is_guard req -> take_guards (req :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | req :: _ as reqs when is_guard req && t.open_txn = None ->
      let run, rest = take_guards [] reqs in
      go (List.rev_append (handle_guard_run t run) acc) rest
    | req :: rest -> go (handle t req :: acc) rest
  in
  go [] reqs

(* ------------------------------------------------------------------ *)
(* Graceful shutdown                                                   *)
(* ------------------------------------------------------------------ *)

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Fun.protect
      ~finally:(fun () ->
        (* the journal closes no matter what the steps above did *)
        match t.config.journal with
        | Some j -> (try J.close j with J.Journal_error _ -> ())
        | None -> ())
      (fun () ->
        FP.hit "serve_shutdown";
        (match t.open_txn with
         | Some (h, tx) ->
           Log.info (fun m -> m "shutdown: aborting open transaction %d" h);
           t.open_txn <- None;
           (* abort record first, then the in-memory undo — the journal
              never ends in a dangling intent on the graceful path *)
           R.rollback_txn tx
         | None -> ());
        match (t.config.checkpoint_on_shutdown, t.config.snapshot_path) with
        | true, Some path ->
          let r = R.checkpoint ?journal:t.config.journal t.srepo path in
          Log.info (fun m ->
              m "shutdown checkpoint: %s (%d bytes, %d facts)"
                r.R.snapshot_path r.R.snapshot_bytes r.R.snapshot_facts)
        | _ -> ())
  end

(* ------------------------------------------------------------------ *)
(* The serve loop                                                      *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  mutable pending : string;
  mutable alive : bool;
}

let listen addr =
  match addr with
  | P.Unix_sock path ->
    (try
       if (Unix.lstat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
     with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | P.Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let ip =
      if host = "" || host = "localhost" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ ->
          (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
           with Not_found ->
             raise (P.Protocol_error ("unknown host " ^ host)))
    in
    Unix.bind fd (Unix.ADDR_INET (ip, port));
    Unix.listen fd 64;
    fd

let read_conn c round =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> c.alive <- false
  | n ->
    c.pending <- c.pending ^ Bytes.sub_string buf 0 n;
    (match P.split_frames c.pending with
     | frames, rest ->
       c.pending <- rest;
       List.iter
         (fun payload ->
           let req =
             match P.of_string payload with
             | req -> req
             | exception P.Protocol_error m ->
               P.Obj
                 [ ("op", P.String "_parse_error"); ("error", P.String m) ]
           in
           round := (c, req) :: !round)
         frames
     | exception P.Protocol_error m ->
       Log.warn (fun f -> f "dropping connection: %s" m);
       c.alive <- false)
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    c.alive <- false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let serve ?(idle_timeout = 0.25) t listen_fd =
  let stop_handler = Sys.Signal_handle (fun _ -> request_stop t) in
  let old_int = Sys.signal Sys.sigint stop_handler in
  let old_term = Sys.signal Sys.sigterm stop_handler in
  let conns = ref [] in
  Log.info (fun m -> m "serve loop started (idle timeout %.2fs)" idle_timeout);
  Fun.protect
    ~finally:(fun () ->
      shutdown t;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !conns;
      t.connections <- 0;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term;
      Log.info (fun m ->
          m "serve loop stopped after %d requests (%d batched)" t.requests
            t.batched_guards))
  @@ fun () ->
  while not !(t.stop) do
    let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
    match Unix.select fds [] [] idle_timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      if List.memq listen_fd ready then begin
        match Unix.accept listen_fd with
        | fd, _ ->
          conns := !conns @ [ { fd; pending = ""; alive = true } ];
          t.connections <- List.length !conns;
          Log.debug (fun m -> m "accepted connection (%d live)" t.connections)
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
      end;
      (* drain every readable connection, then answer the whole round —
         consecutive guards across connections batch into one txn *)
      let round = ref [] in
      List.iter
        (fun c -> if List.memq c.fd ready then read_conn c round)
        !conns;
      let round = List.rev !round in
      let resps = handle_round t (List.map snd round) in
      List.iter2
        (fun (c, _) resp ->
          if c.alive then
            try P.write_frame c.fd resp
            with
            | P.Protocol_error _
            | Unix.Unix_error _ -> c.alive <- false)
        round resps;
      conns :=
        List.filter
          (fun c ->
            if c.alive then true
            else begin
              (try Unix.close c.fd with Unix.Unix_error _ -> ());
              false
            end)
          !conns;
      t.connections <- List.length !conns
  done
