type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list
  | Raw of string

exception Protocol_error of string

(* Version of the request vocabulary, echoed by the server's [ping].
   2 added generation handles: pin {generation}, check {as_of}, and the
   history op over the retained-generation table. *)
let version = 2

let err fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec print b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
    else Buffer.add_string b "null"
  | String s ->
    Buffer.add_char b '"';
    add_escaped b s;
    Buffer.add_char b '"'
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        print b v)
      l;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        add_escaped b k;
        Buffer.add_string b "\":";
        print b v)
      kvs;
    Buffer.add_char b '}'
  | Raw s -> Buffer.add_string b s

let to_string j =
  let b = Buffer.create 256 in
  print b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; no dependency)                          *)
(* ------------------------------------------------------------------ *)

let add_utf8 b code =
  (* single-escape BMP code points; lone surrogates encode as-is *)
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () =
    if !pos >= n then err "json: unexpected end of input" else s.[!pos]
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let lit w v =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then begin
      pos := !pos + l;
      v
    end
    else err "json: invalid literal at offset %d" !pos
  in
  let is_digit c = c >= '0' && c <= '9' in
  let parse_string () =
    incr pos; (* opening quote *)
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "json: unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents b
      | '\\' ->
        incr pos;
        if !pos >= n then err "json: unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 >= n then err "json: truncated \\u escape";
           let code =
             match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
             | Some c -> c
             | None -> err "json: bad \\u escape at offset %d" !pos
           in
           pos := !pos + 4;
           add_utf8 b code
         | c -> err "json: bad escape '\\%c'" c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = '-' then incr pos;
    while !pos < n && is_digit s.[!pos] do incr pos done;
    if !pos < n && s.[!pos] = '.' then begin
      is_float := true;
      incr pos;
      while !pos < n && is_digit s.[!pos] do incr pos done
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      is_float := true;
      incr pos;
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
      while !pos < n && is_digit s.[!pos] do incr pos done
    end;
    let lex = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lex with
      | Some f -> Float f
      | None -> err "json: bad number %S" lex
    else
      match int_of_string_opt lex with
      | Some i -> Int i
      | None ->
        (match float_of_string_opt lex with
         | Some f -> Float f
         | None -> err "json: bad number %S" lex)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> lit "null" Null
    | 't' -> lit "true" (Bool true)
    | 'f' -> lit "false" (Bool false)
    | '"' -> String (parse_string ())
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        List []
      end
      else
        let rec go acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            go (v :: acc)
          | ']' ->
            incr pos;
            List (List.rev (v :: acc))
          | c -> err "json: expected ',' or ']', got '%c'" c
        in
        go []
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else
        let pair () =
          skip_ws ();
          if peek () <> '"' then err "json: expected object key at %d" !pos;
          let k = parse_string () in
          skip_ws ();
          if peek () <> ':' then err "json: expected ':' at %d" !pos;
          incr pos;
          (k, parse_value ())
        in
        let rec go acc =
          let kv = pair () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            go (kv :: acc)
          | '}' ->
            incr pos;
            Obj (List.rev (kv :: acc))
          | c -> err "json: expected ',' or '}', got '%c'" c
        in
        go []
    | '-' | '0' .. '9' -> parse_number ()
    | c -> err "json: unexpected character '%c' at offset %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then err "json: trailing garbage at offset %d" !pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let string_field k j =
  match member k j with Some (String s) -> Some s | _ -> None

let int_field k j = match member k j with Some (Int i) -> Some i | _ -> None

let bool_field ?(default = false) k j =
  match member k j with Some (Bool b) -> b | _ -> default

let list_field k j = match member k j with Some (List l) -> Some l | _ -> None

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let max_frame = 16 * 1024 * 1024

(* One wording for every cap violation, wherever it is caught: the
   offending length and the cap, by name, so a client staring at a
   garbage or hostile stream knows exactly what was refused and why. *)
let bad_length len =
  if len > max_frame then
    err "frame length %d exceeds the %d-byte (16 MiB) frame cap" len max_frame
  else err "malformed frame length %d (not a length-prefixed frame?)" len

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd j =
  let payload = to_string j in
  let len = String.length payload in
  if len > max_frame then
    err "cannot send a %d-byte frame: exceeds the %d-byte (16 MiB) frame cap"
      len max_frame;
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 b 4 len;
  write_all fd b 0 (4 + len)

(* [`Eof] only when the stream ends exactly on a frame boundary
   ([off = 0]); EOF mid-frame is a protocol error. *)
let read_full fd b off0 len0 =
  let rec go off len =
    if len = 0 then `Ok
    else
      match Unix.read fd b off len with
      | 0 -> if off = off0 then `Eof else err "connection closed mid-frame"
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off0 len0

let frame_length b pos =
  (Char.code (Bytes.get b pos) lsl 24)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 8)
  lor Char.code (Bytes.get b (pos + 3))

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_full fd hdr 0 4 with
  | `Eof -> None
  | `Ok ->
    let len = frame_length hdr 0 in
    if len < 0 || len > max_frame then bad_length len;
    let payload = Bytes.create len in
    (match read_full fd payload 0 len with
     | `Eof -> err "connection closed mid-frame"
     | `Ok -> Some (of_string (Bytes.unsafe_to_string payload)))

let split_frames data =
  let n = String.length data in
  let rec go pos acc =
    if n - pos < 4 then (List.rev acc, String.sub data pos (n - pos))
    else begin
      let len =
        (Char.code data.[pos] lsl 24)
        lor (Char.code data.[pos + 1] lsl 16)
        lor (Char.code data.[pos + 2] lsl 8)
        lor Char.code data.[pos + 3]
      in
      if len < 0 || len > max_frame then bad_length len;
      if n - pos - 4 < len then (List.rev acc, String.sub data pos (n - pos))
      else go (pos + 4 + len) (String.sub data (pos + 4) len :: acc)
    end
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let address_of_string s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 ->
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | Some p when not (String.contains s '/') -> Tcp (String.sub s 0 i, p)
     | _ -> Unix_sock s)
  | _ -> Unix_sock s

let connect addr =
  let domain, sockaddr =
    match addr with
    | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> err "unknown host %s" host
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with Unix.Unix_error (e, _, _) ->
     Unix.close fd;
     err "connect %s: %s" (address_to_string addr) (Unix.error_message e));
  fd

let request fd j =
  write_frame fd j;
  match read_frame fd with
  | Some r -> r
  | None -> err "server closed the connection"
