(** The resident check server.

    A server wraps one {!Xic_core.Repository.t} — arena, Datalog store,
    plan cache, secondary indexes, and materialized denial views all
    stay resident — and answers {!Protocol} requests:

    {ul
    {- [ping], [stats], [shutdown];}
    {- [metrics]: Prometheus text exposition of every counter, gauge and
       latency histogram (serve gauges — open transactions, pins,
       journal bytes since checkpoint, resident store facts, live
       connections — are synced just before rendering);}
    {- [slow]: the N slowest requests so far (worst first), each with
       its op, duration, trace identifiers, truncated request document,
       and — when request tracing is on — its full span tree;}
    {- [check]: live verdict, a pinned one ([{"pin":id}]), or a
       time-travel one at a retained past generation
       ([{"as_of":generation}]) — while a streaming transaction is open,
       plain checks are served from the last {e committed} generation's
       pin (snapshot isolation: readers never observe uncommitted
       statements);}
    {- [pin] / [unpin]: capture / release a reader generation handle —
       O(1) copy-on-write freezes sharing structure with the live
       writer, never store copies; [{"generation":g}] pins a retained
       past generation instead of the current one;}
    {- [history]: the retained-generation table — every generation still
       materialized (in-flight pins and bounded time-travel history)
       with its refcount, plus the heap those handles hold beyond the
       live store ([pin_bytes]);}
    {- [guard]: one guarded update ([{"update":stmt}]) — guard requests
       arriving in the same poll round are applied as one
       {!Xic_core.Repository.guarded_batch} (single commit fsync, one
       composed delta flush) with per-request verdicts;}
    {- [txn]: an atomic batch of statements in one request;}
    {- [txn_begin] / [txn_stmt] / [txn_commit] / [txn_abort]: a
       streaming transaction across requests (one writer at a time);}
    {- [checkpoint]: snapshot + journal truncation
       ({!Xic_core.Repository.checkpoint}); evicts the committed-pin
       cache and the zero-ref retained history — the snapshot owns that
       state durably.}}

    Single-threaded [select] loop — on this container there is one CPU,
    so concurrency is I/O multiplexing, not parallelism; the serialized
    writer comes for free and readers are isolated by frozen generation
    handles that cost O(1) to open and retain only the unshared log
    suffix. *)

type config = {
  journal : Xic_journal.Journal.t option;
      (** guarded updates and transactions journal through this; the
          server owns it from here on and closes it at shutdown *)
  snapshot_path : string option;  (** default [checkpoint] target *)
  checkpoint_on_shutdown : bool;
      (** write a final checkpoint during graceful shutdown (requires
          [snapshot_path]) *)
  fallback : [ `Full_check | `Runtime_simplification ];
      (** strategy for guards matching no registered pattern *)
  slow_capacity : int;
      (** how many slowest requests the [slow] op retains (min 1) *)
}

val default_config : config
(** No journal, no snapshot path, no shutdown checkpoint, [`Full_check],
    8 slow-request slots. *)

type t

val create : ?config:config -> Xic_core.Repository.t -> t
val repo : t -> Xic_core.Repository.t
val requests : t -> int
(** Requests handled so far. *)

val handle : t -> Protocol.json -> Protocol.json
(** Process one request (exceptions become [{"ok":false,...}] error
    responses).  Exposed for unit tests; the loop uses it too.

    Trace propagation: a request may carry [trace_id] (an opaque
    client-chosen correlation id) and [span_id] (the client's span);
    both are attached to the per-request server span, the [trace_id] is
    stamped on every log line emitted while handling the request, and
    the response echoes the [trace_id] plus the server-assigned
    [span_id]. *)

val trace_roots : t -> Xic_obs.Obs.Trace.span list
(** Completed request spans (plus any spans drained at {!create} time,
    e.g. document load), oldest first — the serve session's trace,
    ready for {!Xic_obs.Obs.Trace.to_chrome_json}.  Empty unless
    tracing was enabled. *)

val handle_round : t -> Protocol.json list -> Protocol.json list
(** Process one poll round's requests in order, applying maximal
    consecutive runs of [guard] requests as single batches.  Responses
    are in request order. *)

val request_stop : t -> unit
(** Ask the serve loop to exit after the current round (signal-safe). *)

val stop_requested : t -> bool

val shutdown : t -> unit
(** Graceful shutdown: abort any open streaming transaction (its abort
    record is forced to disk before the in-memory undo — see
    {!Xic_core.Repository.rollback_txn}), write the shutdown checkpoint
    if configured, and close the journal.  The journal is closed even if
    an earlier step raises.  Idempotent.  Failpoint: [serve_shutdown]
    fires before the transaction abort, so the torture tests can kill
    the process mid-shutdown. *)

val listen : Protocol.address -> Unix.file_descr
(** Bind + listen.  A Unix-domain path is unlinked first if stale. *)

val serve : ?idle_timeout:float -> t -> Unix.file_descr -> unit
(** Accept and serve connections until {!request_stop} (a [shutdown]
    request, SIGINT or SIGTERM — handlers are installed for both), then
    run {!shutdown} and close every connection and the listening
    socket.  [idle_timeout] (default 0.25 s) bounds the select wait so
    stop requests are honored promptly. *)
