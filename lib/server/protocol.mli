(** Wire protocol of the check server: length-prefixed JSON frames.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON — trivial to speak from any client, no
    delimiter-escaping, and the reader always knows how much to buffer.
    The JSON value type is deliberately minimal (this repository takes
    no external dependencies); {!Raw} embeds a pre-rendered JSON
    document verbatim, which is how the server's [stats] response reuses
    [Repository.metrics_json] without re-encoding it. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list
  | Raw of string
      (** printed verbatim (caller guarantees well-formed JSON); never
          produced by the parser *)

exception Protocol_error of string
(** Malformed JSON, oversized or truncated frames, connection errors. *)

val version : int
(** Request-vocabulary version, echoed by the server's [ping] response
    ([protocol] field).  Version 2 added generation handles:
    [pin {generation}], [check {as_of}], and the [history] op. *)

val to_string : json -> string
val of_string : string -> json

(** {1 Field accessors} ([None] / default when absent or mistyped) *)

val member : string -> json -> json option
val string_field : string -> json -> string option
val int_field : string -> json -> int option
val bool_field : ?default:bool -> string -> json -> bool
val list_field : string -> json -> json list option

(** {1 Framing} *)

val max_frame : int
(** Refuse frames larger than this (16 MiB). *)

val write_frame : Unix.file_descr -> json -> unit
(** Serialize and write one frame (blocking, handles short writes). *)

val read_frame : Unix.file_descr -> json option
(** Read one frame (blocking); [None] on clean EOF before the header.
    @raise Protocol_error on EOF mid-frame or a malformed payload. *)

val split_frames : string -> string list * string
(** Incremental decode for the server's read buffers: the payloads of
    every complete frame at the front of [data], plus the unconsumed
    remainder.  @raise Protocol_error on an oversized frame length. *)

(** {1 Client side} *)

type address =
  | Unix_sock of string  (** filesystem path of a Unix-domain socket *)
  | Tcp of string * int

val address_to_string : address -> string

val address_of_string : string -> address
(** ["host:port"] (with an all-digit port) parses as {!Tcp}, anything
    else as a {!Unix_sock} path. *)

val connect : address -> Unix.file_descr

val request : Unix.file_descr -> json -> json
(** One synchronous round trip: write a frame, read the response.
    @raise Protocol_error if the server closes the connection first. *)
