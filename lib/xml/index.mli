(** Secondary indexes over an arena document.

    Four access paths serve the query shapes produced by the
    denial-to-XQuery translation: element-name → node list,
    (tag, attribute, value) and (tag, pcdata value) hash lookups, and a
    parent/child-position cache.  The tables are built lazily on first
    lookup and from then on maintained incrementally from the document's
    mutation events ({!Doc.set_observer}), so XUpdate application, undo,
    savepoint rollback and crash recovery keep them consistent without
    any cooperation from those layers. *)

type t

type stats = {
  mutable hits : int;       (** lookups served from the index *)
  mutable misses : int;     (** builds, sorts and cache fills *)
  mutable fallbacks : int;  (** planner bail-outs to the scan interpreter *)
  mutable events : int;     (** document mutations processed *)
}

val create : Doc.t -> t
(** Attach a fresh (unbuilt) index to [doc] as its mutation observer.
    No table is populated until the first lookup. *)

val detach : t -> unit
(** Unregister from the document; the index must not be queried after. *)

val doc : t -> Doc.t
val built : t -> bool

(** {1 Lookups}

    All lookups force the initial build.  Node lists are deduplicated and
    in document order. *)

val by_name : t -> string -> Doc.node_id list
(** All reachable elements with the given tag, roots included. *)

val descendants_named : t -> string -> Doc.node_id list
(** The [//tag] node set: like {!by_name} but excluding root elements
    (a child step never yields a root). *)

val by_attr : t -> tag:string -> attr:string -> string -> Doc.node_id list
(** Elements [tag] carrying [@attr = value]. *)

val by_pcdata : t -> tag:string -> string -> Doc.node_id list
(** Elements [tag] with a {e direct} text child equal to the value —
    the node set satisfying [self::tag\[text() = value\]] (each text
    child is compared on its own, not the concatenated content). *)

val children_named : t -> Doc.node_id -> string -> Doc.node_id list
(** Element children of a node with the given tag, cached per parent. *)

val position : t -> Doc.node_id -> int
(** Cached {!Doc.position}. *)

(** {1 Document order}

    A rank table built by one DFS over the reachable nodes (invalidated
    by any structural mutation, rebuilt lazily) turns document-order
    comparison into an array read — [Doc.order_key] instead walks every
    node to its root and scans each ancestor's child list. *)

val sort_doc_order : t -> Doc.node_id list -> Doc.node_id list
(** Sort and deduplicate into document order; agrees exactly with
    {!Doc.sort_doc_order} (detached nodes defer to it). *)

val doc_order_compare : t -> Doc.node_id -> Doc.node_id -> int

(** {1 Symbol-keyed lookups}

    The same lookups with pre-interned names, for compiled plans that
    resolve all name tests at compile time. *)

val by_name_sym : t -> Doc.Symbol.t -> Doc.node_id list
val descendants_named_sym : t -> Doc.Symbol.t -> Doc.node_id list
val by_attr_sym : t -> tag:Doc.Symbol.t -> attr:Doc.Symbol.t -> string -> Doc.node_id list
val by_pcdata_sym : t -> tag:Doc.Symbol.t -> string -> Doc.node_id list
val children_named_sym : t -> Doc.node_id -> Doc.Symbol.t -> Doc.node_id list

(** {1 Shared read-only phase}

    During parallel checking several domains query one index over a
    read-only document.  [prepare_shared] forces the build and prewarms
    every sorted bucket view; while the shared flag is set, lookups never
    write to any table or counter (cache misses recompute locally), so
    concurrent readers are safe.  The document must not be mutated until
    {!unshare}. *)

val prepare_shared : t -> unit
val unshare : t -> unit
val shared : t -> bool

(** {1 Statistics} *)

val note_fallback : t -> unit
(** Record that a planner examined a query it could not index. *)

val stats : t -> stats
val reset_stats : t -> unit

val stats_line : t -> string
(** ["index: H hits, M misses, F fallbacks"]. *)

(** {1 Consistency audit}

    For tests: compare the incrementally maintained tables against a
    from-scratch rebuild, and every cache entry against the document. *)

val consistency_errors : t -> string list
val consistent : t -> bool
