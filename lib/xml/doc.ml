module Symbol = Xic_symbol.Symbol

type node_id = int

let no_node = -1

type kind =
  | Element of Symbol.t
  | Text of string

type node = {
  mutable parent : node_id;
  mutable nkind : kind;
  mutable nattrs : (Symbol.t * string) list;
  mutable nchildren : node_id list;
  mutable alive : bool;
}

(* Structural-change notifications, consumed by secondary indexes
   (Index.t).  [Attached]/[Attr_set] fire after the mutation, [Detaching]
   before it, while the parent link and sibling list are still intact —
   an index needs the old shape to find the entries it must drop. *)
type event =
  | Attached of node_id
  | Detaching of node_id
  | Attr_set of node_id * Symbol.t

type t = {
  mutable nodes : node option array;
  mutable next_id : int;
  mutable root_ids : node_id list;  (* registration order *)
  mutable live_count : int;
  mutable observer : (event -> unit) option;
}

let create () =
  { nodes = Array.make 64 None; next_id = 0; root_ids = []; live_count = 0;
    observer = None }

let set_observer doc f = doc.observer <- f

let notify doc e =
  match doc.observer with
  | None -> ()
  | Some f -> f e

let ensure_capacity doc n =
  let len = Array.length doc.nodes in
  if n >= len then begin
    let len' = max (n + 1) (2 * len) in
    let a = Array.make len' None in
    Array.blit doc.nodes 0 a 0 len;
    doc.nodes <- a
  end

let get doc id =
  if id < 0 || id >= doc.next_id then invalid_arg "Doc: unknown node id"
  else
    match doc.nodes.(id) with
    | Some n when n.alive -> n
    | _ -> invalid_arg "Doc: dead node id"

let live doc id =
  id >= 0 && id < doc.next_id
  && (match doc.nodes.(id) with Some n -> n.alive | None -> false)

let alloc doc kind attrs =
  let id = doc.next_id in
  ensure_capacity doc id;
  doc.nodes.(id) <-
    Some { parent = no_node; nkind = kind; nattrs = attrs; nchildren = []; alive = true };
  doc.next_id <- id + 1;
  doc.live_count <- doc.live_count + 1;
  id

let intern_attrs attrs = List.map (fun (k, v) -> (Symbol.intern k, v)) attrs

let make_element doc ?(attrs = []) tag =
  alloc doc (Element (Symbol.intern tag)) (intern_attrs attrs)

let make_text doc s = alloc doc (Text s) []

let check_element doc id =
  match (get doc id).nkind with
  | Element _ -> ()
  | Text _ -> invalid_arg "Doc.set_root: not an element"

let set_root doc id =
  check_element doc id;
  List.iter (fun r -> if r <> id then notify doc (Detaching r)) doc.root_ids;
  let was_root = List.mem id doc.root_ids in
  doc.root_ids <- [ id ];
  if not was_root then notify doc (Attached id)

let add_root doc id =
  check_element doc id;
  if not (List.mem id doc.root_ids) then begin
    doc.root_ids <- doc.root_ids @ [ id ];
    notify doc (Attached id)
  end

let root doc =
  match doc.root_ids with
  | [] -> invalid_arg "Doc.root: no root set"
  | id :: _ -> id

let roots doc = doc.root_ids

let has_root doc = doc.root_ids <> []

let kind doc id = (get doc id).nkind
let parent doc id = (get doc id).parent
let children doc id = (get doc id).nchildren

let is_element doc id = match kind doc id with Element _ -> true | Text _ -> false
let is_text doc id = not (is_element doc id)

let tag doc id =
  match kind doc id with
  | Element tag -> tag
  | Text _ -> invalid_arg "Doc.tag: text node"

let name doc id = Symbol.name (tag doc id)

let element_children doc id = List.filter (is_element doc) (children doc id)

let attrs_sym doc id = (get doc id).nattrs

let attrs doc id =
  List.map (fun (k, v) -> (Symbol.name k, v)) (attrs_sym doc id)

let rec assq_sym k = function
  | [] -> None
  | (k', v) :: rest -> if Symbol.equal k k' then Some v else assq_sym k rest

let attr_sym doc id k = assq_sym k (attrs_sym doc id)
let attr doc id k = attr_sym doc id (Symbol.intern k)

let set_attr doc id k v =
  let k = Symbol.intern k in
  let n = get doc id in
  n.nattrs <-
    (k, v) :: List.filter (fun (k', _) -> not (Symbol.equal k k')) n.nattrs;
  notify doc (Attr_set (id, k))

let check_detached doc id =
  let n = get doc id in
  if n.parent <> no_node then invalid_arg "Doc: node already attached"

let append_child doc ~parent:pid child =
  check_detached doc child;
  let p = get doc pid in
  p.nchildren <- p.nchildren @ [ child ];
  (get doc child).parent <- pid;
  notify doc (Attached child)

let append_children doc ~parent:pid children =
  List.iter (check_detached doc) children;
  let p = get doc pid in
  p.nchildren <- p.nchildren @ children;
  List.iter (fun c -> (get doc c).parent <- pid) children;
  List.iter (fun c -> notify doc (Attached c)) children

(* Splice [child] into the sibling list of [anchor]; [offset] 0 inserts
   before the anchor, 1 after it. *)
let insert_sibling doc ~anchor ~offset child =
  check_detached doc child;
  let pid = parent doc anchor in
  if pid = no_node then invalid_arg "Doc.insert_sibling: anchor has no parent";
  let p = get doc pid in
  let rec splice = function
    | [] -> invalid_arg "Doc.insert_sibling: anchor not among parent's children"
    | c :: rest when c = anchor ->
      if offset = 0 then child :: c :: rest else c :: child :: rest
    | c :: rest -> c :: splice rest
  in
  p.nchildren <- splice p.nchildren;
  (get doc child).parent <- pid;
  notify doc (Attached child)

let insert_after doc ~anchor child = insert_sibling doc ~anchor ~offset:1 child
let insert_before doc ~anchor child = insert_sibling doc ~anchor ~offset:0 child

let detach doc id =
  let n = get doc id in
  notify doc (Detaching id);
  if n.parent <> no_node then begin
    let p = get doc n.parent in
    p.nchildren <- List.filter (fun c -> c <> id) p.nchildren;
    n.parent <- no_node
  end
  else doc.root_ids <- List.filter (fun r -> r <> id) doc.root_ids

let rec free doc id =
  match doc.nodes.(id) with
  | Some n when n.alive ->
    List.iter (free doc) n.nchildren;
    n.alive <- false;
    doc.live_count <- doc.live_count - 1
  | _ -> ()

let delete_subtree doc id =
  detach doc id;
  free doc id

let position doc id =
  let pid = parent doc id in
  if pid = no_node then 1
  else begin
    let rec idx i = function
      | [] -> 1
      | c :: rest ->
        if c = id then i
        else if is_element doc c then idx (i + 1) rest
        else idx i rest
    in
    idx 1 (children doc pid)
  end

let text_content doc id =
  (* fast paths for the overwhelmingly common shapes in the hot loops of
     checking: a text node itself, and a leaf element with one text child *)
  match kind doc id with
  | Text s -> s
  | Element _ ->
    (match children doc id with
     | [] -> ""
     | [ c ] when (match kind doc c with Text _ -> true | Element _ -> false) ->
       (match kind doc c with Text s -> s | Element _ -> assert false)
     | kids ->
       let buf = Buffer.create 32 in
       let rec go id =
         match kind doc id with
         | Text s -> Buffer.add_string buf s
         | Element _ -> List.iter go (children doc id)
       in
       List.iter go kids;
       Buffer.contents buf)

let descendants doc id =
  let acc = ref [] in
  let rec go id = List.iter (fun c -> acc := c :: !acc; go c) (children doc id) in
  go id;
  List.rev !acc

let descendant_or_self doc id = id :: descendants doc id

let siblings_split doc id =
  let pid = parent doc id in
  if pid = no_node then ([], [])
  else begin
    let rec split before = function
      | [] -> (List.rev before, [])
      | c :: rest when c = id -> (List.rev before, rest)
      | c :: rest -> split (c :: before) rest
    in
    split [] (children doc pid)
  end

let following_siblings doc id = snd (siblings_split doc id)
let preceding_siblings doc id = fst (siblings_split doc id)

let ancestors doc id =
  let rec go id acc =
    let p = parent doc id in
    if p = no_node then List.rev acc else go p (p :: acc)
  in
  go id []

(* Document-order key: (rank of the containing root, path of child indexes
   from that root).  Detached subtrees rank after all roots, keyed by the
   id of their top node. *)
let order_key doc id =
  let rec go id acc =
    let p = parent doc id in
    if p = no_node then (id, acc)
    else begin
      let rec idx i = function
        | [] -> invalid_arg "Doc.order_key: broken parent link"
        | c :: rest -> if c = id then i else idx (i + 1) rest
      in
      go p (idx 0 (children doc p) :: acc)
    end
  in
  let top, path = go id [] in
  let rank =
    let rec find i = function
      | [] -> List.length doc.root_ids + top
      | r :: rest -> if r = top then i else find (i + 1) rest
    in
    find 0 doc.root_ids
  in
  (rank, path)

(* Monomorphic comparators: [compare] on int-list keys dispatches through
   the polymorphic runtime comparator on every element, which shows up in
   the sort-heavy evaluator paths. *)
let rec compare_int_list (a : int list) (b : int list) =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x < y then -1 else if x > y then 1 else compare_int_list a' b'

let compare_order_key (ra, pa) (rb, pb) =
  if (ra : int) < rb then -1 else if ra > rb then 1 else compare_int_list pa pb

let doc_order_compare doc a b =
  if a = b then 0 else compare_order_key (order_key doc a) (order_key doc b)

(* Precompute keys once (Schwartzian transform): [order_key] walks to the
   root, so comparing keys inside the sort would be quadratic in depth. *)
let sort_doc_order doc ids =
  match ids with
  | [] | [ _ ] -> ids
  | _ ->
    let cmp (ka, (a : node_id)) (kb, b) =
      let c = compare_order_key ka kb in
      if c <> 0 then c else Stdlib.compare a b
    in
    List.map (fun id -> (order_key doc id, id)) ids
    |> List.sort_uniq cmp
    |> List.map snd

let node_count doc = doc.live_count
let id_bound doc = doc.next_id

let iter_nodes doc f =
  for id = 0 to doc.next_id - 1 do
    if live doc id then f id
  done

let copy doc =
  let nodes =
    Array.map
      (function
        | None -> None
        | Some n ->
          Some
            { parent = n.parent;
              nkind = n.nkind;
              nattrs = n.nattrs;
              nchildren = n.nchildren;
              alive = n.alive;
            })
      doc.nodes
  in
  (* the copy starts unobserved: an index watches exactly one document *)
  { nodes; next_id = doc.next_id; root_ids = doc.root_ids;
    live_count = doc.live_count; observer = None }

let equal_structure d1 d2 =
  let cmp_attr (k1, v1) (k2, v2) =
    let c = Symbol.compare k1 k2 in
    if c <> 0 then c else String.compare v1 v2
  in
  let sorted_attrs l = List.sort cmp_attr l in
  let eq_attrs a1 a2 =
    List.equal
      (fun (k1, v1) (k2, v2) -> Symbol.equal k1 k2 && String.equal v1 v2)
      (sorted_attrs a1) (sorted_attrs a2)
  in
  let rec eq id1 id2 =
    match (kind d1 id1, kind d2 id2) with
    | Text s1, Text s2 -> String.equal s1 s2
    | Element t1, Element t2 ->
      Symbol.equal t1 t2
      && eq_attrs (attrs_sym d1 id1) (attrs_sym d2 id2)
      && (let c1 = children d1 id1 and c2 = children d2 id2 in
          List.length c1 = List.length c2 && List.for_all2 eq c1 c2)
    | _ -> false
  in
  let r1 = roots d1 and r2 = roots d2 in
  List.length r1 = List.length r2 && List.for_all2 eq r1 r2
