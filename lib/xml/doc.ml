module Symbol = Xic_symbol.Symbol

type node_id = int

let no_node = -1

type kind =
  | Element of Symbol.t
  | Text of string

(* Structural-change notifications, consumed by secondary indexes
   (Index.t).  [Attached]/[Attr_set] fire after the mutation, [Detaching]
   before it, while the parent link and sibling list are still intact —
   an index needs the old shape to find the entries it must drop. *)
type event =
  | Attached of node_id
  | Detaching of node_id
  | Attr_set of node_id * Symbol.t

(* Struct-of-arrays arena.  A node is a row across packed int arrays:
   parent / first_child / last_child / next_sib / prev_sib sibling links
   give O(1) append, insert and detach with no per-node list cells.

   [tagk] packs the kind and the payload in one int: an element stores
   its interned tag id (>= 0), a text node stores [lnot i] (< 0) where
   [i] indexes the [texts] pool.  Attributes live in a shared pool of
   parallel arrays ([aname]/[avalue]/[anext]) chained per node from
   [attr_head], preserving declaration order. *)
type t = {
  mutable parent : int array;
  mutable first_child : int array;
  mutable last_child : int array;
  mutable next_sib : int array;
  mutable prev_sib : int array;
  mutable tagk : int array;
  mutable attr_head : int array;
  mutable dead : Bytes.t;
  mutable next_id : int;
  mutable texts : string array;
  mutable n_texts : int;
  mutable aname : int array;
  mutable avalue : string array;
  mutable anext : int array;
  mutable n_attrs : int;
  mutable root_ids : node_id list;  (* registration order *)
  mutable live_count : int;
  mutable observers : (int * (event -> unit)) list;
  mutable next_token : int;
}

let create ?(capacity = 64) () =
  let cap = max 16 capacity in
  { parent = Array.make cap no_node;
    first_child = Array.make cap no_node;
    last_child = Array.make cap no_node;
    next_sib = Array.make cap no_node;
    prev_sib = Array.make cap no_node;
    tagk = Array.make cap 0;
    attr_head = Array.make cap (-1);
    dead = Bytes.make cap '\000';
    next_id = 0;
    texts = Array.make (max 16 (capacity / 4)) "";
    n_texts = 0;
    aname = Array.make 16 0;
    avalue = Array.make 16 "";
    anext = Array.make 16 (-1);
    n_attrs = 0;
    root_ids = [];
    live_count = 0;
    observers = [];
    next_token = 1;
  }

(* Token 0 is reserved for the single [set_observer] slot (the secondary
   index); [subscribe] hands out tokens >= 1. *)
let index_token = 0

let set_observer doc f =
  let rest = List.filter (fun (t, _) -> t <> index_token) doc.observers in
  match f with
  | None -> doc.observers <- rest
  | Some f -> doc.observers <- (index_token, f) :: rest

let subscribe doc f =
  let t = doc.next_token in
  doc.next_token <- t + 1;
  doc.observers <- doc.observers @ [ (t, f) ];
  t

let unsubscribe doc t =
  doc.observers <- List.filter (fun (t', _) -> t' <> t) doc.observers

let notify doc e =
  match doc.observers with
  | [] -> ()
  | [ (_, f) ] -> f e
  | obs -> List.iter (fun (_, f) -> f e) obs

let grow_int a len' fill =
  let a' = Array.make len' fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let ensure_capacity doc n =
  let len = Array.length doc.parent in
  if n >= len then begin
    let len' = max (n + 1) (2 * len) in
    doc.parent <- grow_int doc.parent len' no_node;
    doc.first_child <- grow_int doc.first_child len' no_node;
    doc.last_child <- grow_int doc.last_child len' no_node;
    doc.next_sib <- grow_int doc.next_sib len' no_node;
    doc.prev_sib <- grow_int doc.prev_sib len' no_node;
    doc.tagk <- grow_int doc.tagk len' 0;
    doc.attr_head <- grow_int doc.attr_head len' (-1);
    let d = Bytes.make len' '\000' in
    Bytes.blit doc.dead 0 d 0 (Bytes.length doc.dead);
    doc.dead <- d
  end

let check doc id =
  if id < 0 || id >= doc.next_id then invalid_arg "Doc: unknown node id"
  else if Bytes.unsafe_get doc.dead id <> '\000' then
    invalid_arg "Doc: dead node id"

let live doc id =
  id >= 0 && id < doc.next_id && Bytes.unsafe_get doc.dead id = '\000'

let alloc doc tagk =
  let id = doc.next_id in
  ensure_capacity doc id;
  doc.tagk.(id) <- tagk;
  (* the remaining columns hold their defaults from [ensure_capacity] /
     [create]; ids are never reused, so no reset is needed *)
  doc.next_id <- id + 1;
  doc.live_count <- doc.live_count + 1;
  id

let add_text_pool doc s =
  let n = doc.n_texts in
  if n >= Array.length doc.texts then begin
    let a = Array.make (2 * Array.length doc.texts) "" in
    Array.blit doc.texts 0 a 0 n;
    doc.texts <- a
  end;
  doc.texts.(n) <- s;
  doc.n_texts <- n + 1;
  n

let add_attr_pool doc k v nxt =
  let n = doc.n_attrs in
  if n >= Array.length doc.aname then begin
    let len' = 2 * Array.length doc.aname in
    doc.aname <- grow_int doc.aname len' 0;
    let a = Array.make len' "" in
    Array.blit doc.avalue 0 a 0 n;
    doc.avalue <- a;
    doc.anext <- grow_int doc.anext len' (-1)
  end;
  doc.aname.(n) <- Symbol.to_int k;
  doc.avalue.(n) <- v;
  doc.anext.(n) <- nxt;
  doc.n_attrs <- n + 1;
  n

(* Chain fresh pool slots in declaration order, allocating front-to-back
   so the pool itself also stays in document order. *)
let set_attrs_list doc id attrs =
  let rec alloc_fwd = function
    | [] -> -1
    | [ (k, v) ] -> add_attr_pool doc k v (-1)
    | (k, v) :: rest ->
      let slot = add_attr_pool doc k v (-1) in
      let tail = alloc_fwd rest in
      doc.anext.(slot) <- tail;
      slot
  in
  doc.attr_head.(id) <- alloc_fwd attrs

let make_element_sym doc ?(attrs = []) tag =
  let id = alloc doc (Symbol.to_int tag) in
  if attrs <> [] then set_attrs_list doc id attrs;
  id

let make_element doc ?(attrs = []) tag =
  make_element_sym doc
    ~attrs:(List.map (fun (k, v) -> (Symbol.intern k, v)) attrs)
    (Symbol.intern tag)

let make_text doc s = alloc doc (lnot (add_text_pool doc s))

let is_element doc id =
  check doc id;
  Array.unsafe_get doc.tagk id >= 0

let is_text doc id = not (is_element doc id)

let kind doc id =
  check doc id;
  let tk = Array.unsafe_get doc.tagk id in
  if tk >= 0 then Element (Symbol.unsafe_of_int tk)
  else Text doc.texts.(lnot tk)

let tag doc id =
  check doc id;
  let tk = Array.unsafe_get doc.tagk id in
  if tk >= 0 then Symbol.unsafe_of_int tk
  else invalid_arg "Doc.tag: text node"

let name doc id = Symbol.name (tag doc id)

let parent doc id =
  check doc id;
  Array.unsafe_get doc.parent id

let check_element doc id =
  if not (is_element doc id) then invalid_arg "Doc.set_root: not an element"

let set_root doc id =
  check_element doc id;
  List.iter (fun r -> if r <> id then notify doc (Detaching r)) doc.root_ids;
  let was_root = List.mem id doc.root_ids in
  doc.root_ids <- [ id ];
  if not was_root then notify doc (Attached id)

let add_root doc id =
  check_element doc id;
  if not (List.mem id doc.root_ids) then begin
    doc.root_ids <- doc.root_ids @ [ id ];
    notify doc (Attached id)
  end

let root doc =
  match doc.root_ids with
  | [] -> invalid_arg "Doc.root: no root set"
  | id :: _ -> id

let roots doc = doc.root_ids

let has_root doc = doc.root_ids <> []

let iter_children doc id f =
  check doc id;
  let c = ref (Array.unsafe_get doc.first_child id) in
  while !c <> no_node do
    let next = Array.unsafe_get doc.next_sib !c in
    f !c;
    c := next
  done

let children doc id =
  check doc id;
  let rec go c acc =
    if c = no_node then List.rev acc
    else go (Array.unsafe_get doc.next_sib c) (c :: acc)
  in
  go (Array.unsafe_get doc.first_child id) []

let element_children doc id =
  check doc id;
  let rec go c acc =
    if c = no_node then List.rev acc
    else
      go (Array.unsafe_get doc.next_sib c)
        (if Array.unsafe_get doc.tagk c >= 0 then c :: acc else acc)
  in
  go (Array.unsafe_get doc.first_child id) []

let attrs_sym doc id =
  check doc id;
  let rec go slot acc =
    if slot < 0 then List.rev acc
    else
      go doc.anext.(slot)
        ((Symbol.unsafe_of_int doc.aname.(slot), doc.avalue.(slot)) :: acc)
  in
  go (Array.unsafe_get doc.attr_head id) []

let attrs doc id =
  List.map (fun (k, v) -> (Symbol.name k, v)) (attrs_sym doc id)

let attr_sym doc id k =
  check doc id;
  let ki = Symbol.to_int k in
  let rec go slot =
    if slot < 0 then None
    else if doc.aname.(slot) = ki then Some doc.avalue.(slot)
    else go doc.anext.(slot)
  in
  go (Array.unsafe_get doc.attr_head id)

let attr doc id k = attr_sym doc id (Symbol.intern k)

let set_attr doc id k v =
  let k = Symbol.intern k in
  check doc id;
  let ki = Symbol.to_int k in
  (* unlink an existing entry for [k], then reuse (or allocate) a slot at
     the head of the chain — same order as the legacy representation's
     [(k, v) :: filter ...]: the assigned key moves to the front. *)
  let head = doc.attr_head.(id) in
  let slot =
    let rec unlink prev slot =
      if slot < 0 then -1
      else if doc.aname.(slot) = ki then begin
        (if prev < 0 then doc.attr_head.(id) <- doc.anext.(slot)
         else doc.anext.(prev) <- doc.anext.(slot));
        slot
      end
      else unlink slot doc.anext.(slot)
    in
    unlink (-1) head
  in
  if slot >= 0 then begin
    doc.avalue.(slot) <- v;
    doc.anext.(slot) <- doc.attr_head.(id);
    doc.attr_head.(id) <- slot
  end
  else doc.attr_head.(id) <- add_attr_pool doc k v doc.attr_head.(id);
  notify doc (Attr_set (id, k))

let check_detached doc id =
  check doc id;
  if doc.parent.(id) <> no_node then invalid_arg "Doc: node already attached"

(* Link [child] as last child of [pid]; no event, no checks. *)
let link_last doc pid child =
  let last = doc.last_child.(pid) in
  if last = no_node then doc.first_child.(pid) <- child
  else doc.next_sib.(last) <- child;
  doc.prev_sib.(child) <- last;
  doc.next_sib.(child) <- no_node;
  doc.last_child.(pid) <- child;
  doc.parent.(child) <- pid

let append_child doc ~parent:pid child =
  check_detached doc child;
  check doc pid;
  link_last doc pid child;
  notify doc (Attached child)

let append_children doc ~parent:pid children =
  List.iter (check_detached doc) children;
  check doc pid;
  List.iter (fun c -> link_last doc pid c) children;
  List.iter (fun c -> notify doc (Attached c)) children

(* Splice [child] into the sibling list of [anchor]; [offset] 0 inserts
   before the anchor, 1 after it. *)
let insert_sibling doc ~anchor ~offset child =
  check_detached doc child;
  check doc anchor;
  let pid = doc.parent.(anchor) in
  if pid = no_node then invalid_arg "Doc.insert_sibling: anchor has no parent";
  let before, after =
    if offset = 0 then (doc.prev_sib.(anchor), anchor)
    else (anchor, doc.next_sib.(anchor))
  in
  (if before = no_node then doc.first_child.(pid) <- child
   else doc.next_sib.(before) <- child);
  (if after = no_node then doc.last_child.(pid) <- child
   else doc.prev_sib.(after) <- child);
  doc.prev_sib.(child) <- before;
  doc.next_sib.(child) <- after;
  doc.parent.(child) <- pid;
  notify doc (Attached child)

let insert_after doc ~anchor child = insert_sibling doc ~anchor ~offset:1 child
let insert_before doc ~anchor child = insert_sibling doc ~anchor ~offset:0 child

let detach doc id =
  check doc id;
  notify doc (Detaching id);
  let pid = doc.parent.(id) in
  if pid <> no_node then begin
    let before = doc.prev_sib.(id) and after = doc.next_sib.(id) in
    (if before = no_node then doc.first_child.(pid) <- after
     else doc.next_sib.(before) <- after);
    (if after = no_node then doc.last_child.(pid) <- before
     else doc.prev_sib.(after) <- before);
    doc.parent.(id) <- no_node;
    doc.prev_sib.(id) <- no_node;
    doc.next_sib.(id) <- no_node
  end
  else doc.root_ids <- List.filter (fun r -> r <> id) doc.root_ids

let rec free doc id =
  if live doc id then begin
    iter_children doc id (fun c -> free doc c);
    Bytes.unsafe_set doc.dead id '\001';
    doc.live_count <- doc.live_count - 1
  end

let delete_subtree doc id =
  detach doc id;
  free doc id

let position doc id =
  check doc id;
  if doc.parent.(id) = no_node then 1
  else begin
    let n = ref 1 in
    let c = ref (doc.prev_sib.(id)) in
    while !c <> no_node do
      if Array.unsafe_get doc.tagk !c >= 0 then incr n;
      c := Array.unsafe_get doc.prev_sib !c
    done;
    !n
  end

let text_content doc id =
  (* fast paths for the overwhelmingly common shapes in the hot loops of
     checking: a text node itself, and a leaf element with one text child *)
  check doc id;
  let tk = Array.unsafe_get doc.tagk id in
  if tk < 0 then doc.texts.(lnot tk)
  else begin
    let fc = doc.first_child.(id) in
    if fc = no_node then ""
    else if doc.next_sib.(fc) = no_node && doc.tagk.(fc) < 0 then
      doc.texts.(lnot doc.tagk.(fc))
    else begin
      let buf = Buffer.create 32 in
      let rec go id =
        let tk = doc.tagk.(id) in
        if tk < 0 then Buffer.add_string buf doc.texts.(lnot tk)
        else iter_children doc id go
      in
      iter_children doc id go;
      Buffer.contents buf
    end
  end

let descendants doc id =
  check doc id;
  let acc = ref [] in
  let rec go id =
    iter_children doc id (fun c ->
        acc := c :: !acc;
        go c)
  in
  go id;
  List.rev !acc

let descendant_or_self doc id = id :: descendants doc id

let following_siblings doc id =
  check doc id;
  let rec go c acc =
    if c = no_node then List.rev acc else go (doc.next_sib.(c)) (c :: acc)
  in
  go (doc.next_sib.(id)) []

let preceding_siblings doc id =
  check doc id;
  let rec go c acc = if c = no_node then acc else go (doc.prev_sib.(c)) (c :: acc) in
  go (doc.prev_sib.(id)) []

let ancestors doc id =
  let rec go id acc =
    let p = parent doc id in
    if p = no_node then List.rev acc else go p (p :: acc)
  in
  go id []

(* 0-based index among all siblings, by walking the prev links. *)
let sib_index doc id =
  let n = ref 0 in
  let c = ref (doc.prev_sib.(id)) in
  while !c <> no_node do
    incr n;
    c := Array.unsafe_get doc.prev_sib !c
  done;
  !n

(* Document-order key: (rank of the containing root, path of child indexes
   from that root).  Detached subtrees rank after all roots, keyed by the
   id of their top node. *)
let order_key doc id =
  check doc id;
  let rec go id acc =
    let p = doc.parent.(id) in
    if p = no_node then (id, acc) else go p (sib_index doc id :: acc)
  in
  let top, path = go id [] in
  let rank =
    let rec find i = function
      | [] -> List.length doc.root_ids + top
      | r :: rest -> if r = top then i else find (i + 1) rest
    in
    find 0 doc.root_ids
  in
  (rank, path)

(* Monomorphic comparators: [compare] on int-list keys dispatches through
   the polymorphic runtime comparator on every element, which shows up in
   the sort-heavy evaluator paths. *)
let rec compare_int_list (a : int list) (b : int list) =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x < y then -1 else if x > y then 1 else compare_int_list a' b'

let compare_order_key (ra, pa) (rb, pb) =
  if (ra : int) < rb then -1 else if ra > rb then 1 else compare_int_list pa pb

let doc_order_compare doc a b =
  if a = b then 0 else compare_order_key (order_key doc a) (order_key doc b)

(* Precompute keys once (Schwartzian transform): [order_key] walks to the
   root, so comparing keys inside the sort would be quadratic in depth. *)
let sort_doc_order doc ids =
  match ids with
  | [] | [ _ ] -> ids
  | _ ->
    let cmp (ka, (a : node_id)) (kb, b) =
      let c = compare_order_key ka kb in
      if c <> 0 then c else Stdlib.compare a b
    in
    List.map (fun id -> (order_key doc id, id)) ids
    |> List.sort_uniq cmp
    |> List.map snd

let node_count doc = doc.live_count
let id_bound doc = doc.next_id

let iter_nodes doc f =
  for id = 0 to doc.next_id - 1 do
    if live doc id then f id
  done

let copy doc =
  (* the copy starts unobserved: an index watches exactly one document *)
  { parent = Array.copy doc.parent;
    first_child = Array.copy doc.first_child;
    last_child = Array.copy doc.last_child;
    next_sib = Array.copy doc.next_sib;
    prev_sib = Array.copy doc.prev_sib;
    tagk = Array.copy doc.tagk;
    attr_head = Array.copy doc.attr_head;
    dead = Bytes.copy doc.dead;
    next_id = doc.next_id;
    texts = Array.copy doc.texts;
    n_texts = doc.n_texts;
    aname = Array.copy doc.aname;
    avalue = Array.copy doc.avalue;
    anext = Array.copy doc.anext;
    n_attrs = doc.n_attrs;
    root_ids = doc.root_ids;
    live_count = doc.live_count;
    observers = [];
    next_token = 1;
  }

(* ------------------------------------------------------------------ *)
(* Snapshot (de)serialization                                          *)
(* ------------------------------------------------------------------ *)

module Wire = Xic_symbol.Wire

(* Dump the arena columns verbatim (prefix [0 .. next_id)), so node ids
   survive a save/load round trip — the Datalog store's node-id tuples
   and the journal's replay both rely on that. *)
let serialize doc buf =
  let n = doc.next_id in
  Wire.add_int buf n;
  Wire.add_int buf doc.live_count;
  (* structural links are node ids near their own index — store them
     index-relative so almost every varint is one byte; tagk (small
     symbol ids) and attr_head (mostly -1) are already short as-is *)
  Wire.add_int_array_delta buf doc.parent n;
  Wire.add_int_array_delta buf doc.first_child n;
  Wire.add_int_array_delta buf doc.last_child n;
  Wire.add_int_array_delta buf doc.next_sib n;
  Wire.add_int_array_delta buf doc.prev_sib n;
  Wire.add_int_array buf doc.tagk n;
  Wire.add_int_array buf doc.attr_head n;
  Wire.add_string buf (Bytes.sub_string doc.dead 0 n);
  Wire.add_int buf doc.n_texts;
  for i = 0 to doc.n_texts - 1 do
    Wire.add_string buf doc.texts.(i)
  done;
  Wire.add_int buf doc.n_attrs;
  Wire.add_int_array buf doc.aname doc.n_attrs;
  for i = 0 to doc.n_attrs - 1 do
    Wire.add_string buf doc.avalue.(i)
  done;
  Wire.add_int_array buf doc.anext doc.n_attrs;
  Wire.add_int buf (List.length doc.root_ids);
  List.iter (Wire.add_int buf) doc.root_ids

(* Restore a serialized arena in place into an empty document.  Symbol
   ids are process-local (they depend on interning order), so every
   stored tag and attribute-name id goes through [remap], built by the
   snapshot loader from the saved names table. *)
let restore doc ~remap c =
  if doc.next_id > 0 || doc.root_ids <> [] then
    invalid_arg "Doc.restore: document not empty";
  let n = Wire.get_int c in
  if n < 0 then invalid_arg "Doc.restore: negative node count";
  let live_count = Wire.get_int c in
  let col what a = if Array.length a <> n then
      invalid_arg ("Doc.restore: column length mismatch in " ^ what) else a in
  let parent = col "parent" (Wire.get_int_array_delta c) in
  let first_child = col "first_child" (Wire.get_int_array_delta c) in
  let last_child = col "last_child" (Wire.get_int_array_delta c) in
  let next_sib = col "next_sib" (Wire.get_int_array_delta c) in
  let prev_sib = col "prev_sib" (Wire.get_int_array_delta c) in
  let tagk = col "tagk" (Wire.get_int_array c) in
  let attr_head = col "attr_head" (Wire.get_int_array c) in
  (* [get_string] already returns a fresh copy, safe to take ownership *)
  let dead = Bytes.unsafe_of_string (Wire.get_string c) in
  if Bytes.length dead <> n then invalid_arg "Doc.restore: dead column mismatch";
  let n_texts = Wire.get_int c in
  if n_texts < 0 || n_texts > Wire.remaining c then
    invalid_arg "Doc.restore: bad text count";
  let texts = Wire.get_string_array c n_texts in
  let n_attrs = Wire.get_int c in
  if n_attrs < 0 || n_attrs > Wire.remaining c then
    invalid_arg "Doc.restore: bad attr count";
  let aname = Wire.get_int_array c in
  if Array.length aname <> n_attrs then invalid_arg "Doc.restore: aname mismatch";
  let avalue = Wire.get_string_array c n_attrs in
  let anext = Wire.get_int_array c in
  if Array.length anext <> n_attrs then invalid_arg "Doc.restore: anext mismatch";
  let n_roots = Wire.get_int c in
  if n_roots < 0 || n_roots > Wire.remaining c then
    invalid_arg "Doc.restore: bad root count";
  let root_ids = List.init n_roots (fun _ -> Wire.get_int c) in
  (* flatten the remap to raw ids once, so the per-node loop is two
     array reads — it runs over every node of the arena *)
  let nsyms = Array.length remap in
  let ids = Array.map Symbol.to_int remap in
  for i = 0 to n - 1 do
    let k = Array.unsafe_get tagk i in
    if k >= 0 then begin
      if k >= nsyms then invalid_arg "Doc.restore: symbol id out of range";
      Array.unsafe_set tagk i (Array.unsafe_get ids k)
    end
  done;
  for i = 0 to n_attrs - 1 do
    let k = Array.unsafe_get aname i in
    if k < 0 || k >= nsyms then
      invalid_arg "Doc.restore: symbol id out of range";
    Array.unsafe_set aname i (Array.unsafe_get ids k)
  done;
  doc.parent <- parent;
  doc.first_child <- first_child;
  doc.last_child <- last_child;
  doc.next_sib <- next_sib;
  doc.prev_sib <- prev_sib;
  doc.tagk <- tagk;
  doc.attr_head <- attr_head;
  doc.dead <- dead;
  doc.next_id <- n;
  doc.texts <- (if n_texts = 0 then Array.make 16 "" else texts);
  doc.n_texts <- n_texts;
  doc.aname <- (if n_attrs = 0 then Array.make 16 0 else aname);
  doc.avalue <- (if n_attrs = 0 then Array.make 16 "" else avalue);
  doc.anext <- (if n_attrs = 0 then Array.make 16 (-1) else anext);
  doc.n_attrs <- n_attrs;
  doc.root_ids <- root_ids;
  doc.live_count <- live_count

let transplant ~into src =
  if into.next_id > 0 || into.root_ids <> [] then
    invalid_arg "Doc.transplant: destination not empty";
  into.parent <- src.parent;
  into.first_child <- src.first_child;
  into.last_child <- src.last_child;
  into.next_sib <- src.next_sib;
  into.prev_sib <- src.prev_sib;
  into.tagk <- src.tagk;
  into.attr_head <- src.attr_head;
  into.dead <- src.dead;
  into.next_id <- src.next_id;
  into.texts <- src.texts;
  into.n_texts <- src.n_texts;
  into.aname <- src.aname;
  into.avalue <- src.avalue;
  into.anext <- src.anext;
  into.n_attrs <- src.n_attrs;
  into.root_ids <- src.root_ids;
  into.live_count <- src.live_count;
  (* leave [src] reusable but disconnected from the moved arena *)
  let empty = create () in
  src.parent <- empty.parent;
  src.first_child <- empty.first_child;
  src.last_child <- empty.last_child;
  src.next_sib <- empty.next_sib;
  src.prev_sib <- empty.prev_sib;
  src.tagk <- empty.tagk;
  src.attr_head <- empty.attr_head;
  src.dead <- empty.dead;
  src.next_id <- 0;
  src.texts <- empty.texts;
  src.n_texts <- 0;
  src.aname <- empty.aname;
  src.avalue <- empty.avalue;
  src.anext <- empty.anext;
  src.n_attrs <- 0;
  src.root_ids <- [];
  src.live_count <- 0

let equal_structure d1 d2 =
  let cmp_attr (k1, v1) (k2, v2) =
    let c = Symbol.compare k1 k2 in
    if c <> 0 then c else String.compare v1 v2
  in
  let sorted_attrs l = List.sort cmp_attr l in
  let eq_attrs a1 a2 =
    List.equal
      (fun (k1, v1) (k2, v2) -> Symbol.equal k1 k2 && String.equal v1 v2)
      (sorted_attrs a1) (sorted_attrs a2)
  in
  let rec eq id1 id2 =
    match (kind d1 id1, kind d2 id2) with
    | Text s1, Text s2 -> String.equal s1 s2
    | Element t1, Element t2 ->
      Symbol.equal t1 t2
      && eq_attrs (attrs_sym d1 id1) (attrs_sym d2 id2)
      && (let c1 = children d1 id1 and c2 = children d2 id2 in
          List.length c1 = List.length c2 && List.for_all2 eq c1 c2)
    | _ -> false
  in
  let r1 = roots d1 and r2 = roots d2 in
  List.length r1 = List.length r2 && List.for_all2 eq r1 r2
