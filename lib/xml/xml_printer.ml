let escape buf ~quot s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_to_string ~quot s =
  let b = Buffer.create (String.length s + 8) in
  escape b ~quot s;
  Buffer.contents b

let escape_text = escape_to_string ~quot:false
let escape_attr = escape_to_string ~quot:true

let to_buffer ?(indent = false) buf doc id =
  let pad depth =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to depth do
        Buffer.add_string buf "  "
      done
    end
  in
  let rec go depth id =
    match Doc.kind doc id with
    | Doc.Text s -> escape buf ~quot:false s
    | Doc.Element sym ->
      let tag = Doc.Symbol.name sym in
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          escape buf ~quot:true v;
          Buffer.add_char buf '"')
        (Doc.attrs doc id);
      let kids = Doc.children doc id in
      if kids = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        let element_only = List.for_all (Doc.is_element doc) kids in
        List.iter
          (fun k ->
            if element_only then pad (depth + 1);
            go (depth + 1) k)
          kids;
        if element_only then pad depth;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      end
  in
  go 0 id

let node_to_string ?indent doc id =
  let b = Buffer.create 256 in
  to_buffer ?indent b doc id;
  Buffer.contents b

let to_string ?indent doc = node_to_string ?indent doc (Doc.root doc)

let to_file ?indent path doc =
  let oc = open_out_bin path in
  output_string oc (to_string ?indent doc);
  output_char oc '\n';
  close_out oc
