(* Secondary indexes over an arena document.

   Nothing is computed until the first lookup (documents that are only
   parsed and validated never pay for indexing); from then on the tables
   are maintained incrementally from the document's mutation events, so
   XUpdate application, undo, savepoint rollback and crash recovery all
   leave them consistent without cooperation from those layers.

   Membership invariant: the value tables (by_name / by_attr / by_text)
   contain exactly the elements reachable from the document's roots.
   Detached subtrees enter when (re)attached and leave when detached,
   keyed off Doc.Attached / Doc.Detaching — the latter fires before the
   splice, while the parent chain still proves reachability. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable fallbacks : int;
  mutable events : int;
}

(* [ids] is a multiset (an element with two identical text children
   appears twice in its by_text bucket, once per child); [cache] is the
   deduplicated document-order view handed to lookups. *)
type bucket = {
  mutable ids : Doc.node_id list;
  mutable cache : Doc.node_id list option;
}

type t = {
  doc : Doc.t;
  mutable built : bool;
  by_name : (string, bucket) Hashtbl.t;
  by_attr : (string * string * string, bucket) Hashtbl.t;  (* tag, attr, value *)
  by_text : (string * string, bucket) Hashtbl.t;           (* tag, text-child value *)
  (* per-node shadow of what the value tables hold, so removal never needs
     the pre-mutation attribute list or text content *)
  indexed_attrs : (Doc.node_id, (string * string) list) Hashtbl.t;
  indexed_texts : (Doc.node_id, string list) Hashtbl.t;
  (* parent/child-position caches, invalidated whenever the parent's child
     list changes *)
  child_cache : (Doc.node_id, (string, Doc.node_id list) Hashtbl.t) Hashtbl.t;
  pos_cache : (Doc.node_id, int) Hashtbl.t;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Bucket primitives                                                   *)
(* ------------------------------------------------------------------ *)

let bucket_add tbl key id =
  match Hashtbl.find_opt tbl key with
  | Some b ->
    b.ids <- id :: b.ids;
    b.cache <- None
  | None -> Hashtbl.replace tbl key { ids = [ id ]; cache = None }

(* Remove one occurrence (the multiset discipline). *)
let bucket_remove tbl key id =
  match Hashtbl.find_opt tbl key with
  | Some b ->
    let rec rm = function
      | [] -> []
      | x :: rest -> if x = id then rest else x :: rm rest
    in
    b.ids <- rm b.ids;
    b.cache <- None;
    if b.ids = [] then Hashtbl.remove tbl key
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

let rec top_of doc id =
  let p = Doc.parent doc id in
  if p = Doc.no_node then id else top_of doc p

let reachable t id = Doc.live t.doc id && List.mem (top_of t.doc id) (Doc.roots t.doc)

(* ------------------------------------------------------------------ *)
(* Entry maintenance                                                   *)
(* ------------------------------------------------------------------ *)

let text_children t id =
  List.filter_map
    (fun c -> match Doc.kind t.doc c with Doc.Text s -> Some s | Doc.Element _ -> None)
    (Doc.children t.doc id)

let add_element t id =
  let tag = Doc.name t.doc id in
  bucket_add t.by_name tag id;
  (match Doc.attrs t.doc id with
   | [] -> ()
   | attrs ->
     Hashtbl.replace t.indexed_attrs id attrs;
     List.iter (fun (k, v) -> bucket_add t.by_attr (tag, k, v) id) attrs);
  match text_children t id with
  | [] -> ()
  | texts ->
    Hashtbl.replace t.indexed_texts id texts;
    List.iter (fun s -> bucket_add t.by_text (tag, s) id) texts

let remove_element t id =
  let tag = Doc.name t.doc id in
  bucket_remove t.by_name tag id;
  (match Hashtbl.find_opt t.indexed_attrs id with
   | Some attrs ->
     List.iter (fun (k, v) -> bucket_remove t.by_attr (tag, k, v) id) attrs;
     Hashtbl.remove t.indexed_attrs id
   | None -> ());
  match Hashtbl.find_opt t.indexed_texts id with
  | Some ts ->
    List.iter (fun s -> bucket_remove t.by_text (tag, s) id) ts;
    Hashtbl.remove t.indexed_texts id
  | None -> ()

let rec add_subtree t id =
  if Doc.is_element t.doc id then begin
    add_element t id;
    List.iter (add_subtree t) (Doc.children t.doc id)
  end

let rec remove_subtree t id =
  if Doc.is_element t.doc id then begin
    remove_element t id;
    List.iter (remove_subtree t) (Doc.children t.doc id)
  end

(* Caches keyed by nodes of the [id] subtree, dropped even for
   unreachable subtrees (a cached detached node may be freed without ever
   becoming reachable again). *)
let rec purge_caches t id =
  Hashtbl.remove t.child_cache id;
  Hashtbl.remove t.pos_cache id;
  List.iter (purge_caches t) (Doc.children t.doc id)

(* The child list of [p] changed: positional knowledge about any of its
   children (current or just-spliced) is stale. *)
let invalidate_under t p =
  if p <> Doc.no_node && Doc.live t.doc p then begin
    Hashtbl.remove t.child_cache p;
    List.iter (fun c -> Hashtbl.remove t.pos_cache c) (Doc.children t.doc p)
  end

(* Single text child attached to / detached from an indexed element. *)
let text_added t parent s =
  if Doc.is_element t.doc parent then begin
    let tag = Doc.name t.doc parent in
    bucket_add t.by_text (tag, s) parent;
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.indexed_texts parent) in
    Hashtbl.replace t.indexed_texts parent (s :: prev)
  end

let text_removed t parent s =
  if Doc.is_element t.doc parent then begin
    let tag = Doc.name t.doc parent in
    bucket_remove t.by_text (tag, s) parent;
    match Hashtbl.find_opt t.indexed_texts parent with
    | None -> ()
    | Some ts ->
      let rec rm = function
        | [] -> []
        | x :: rest -> if x = s then rest else x :: rm rest
      in
      (match rm ts with
       | [] -> Hashtbl.remove t.indexed_texts parent
       | ts' -> Hashtbl.replace t.indexed_texts parent ts')
  end

let refresh_attrs t id =
  let tag = Doc.name t.doc id in
  (match Hashtbl.find_opt t.indexed_attrs id with
   | Some attrs ->
     List.iter (fun (k, v) -> bucket_remove t.by_attr (tag, k, v) id) attrs;
     Hashtbl.remove t.indexed_attrs id
   | None -> ());
  match Doc.attrs t.doc id with
  | [] -> ()
  | attrs ->
    Hashtbl.replace t.indexed_attrs id attrs;
    List.iter (fun (k, v) -> bucket_add t.by_attr (tag, k, v) id) attrs

(* ------------------------------------------------------------------ *)
(* Event handling                                                      *)
(* ------------------------------------------------------------------ *)

let on_event t e =
  if t.built then begin
    t.stats.events <- t.stats.events + 1;
    match e with
    | Doc.Attached id ->
      let p = Doc.parent t.doc id in
      invalidate_under t p;
      Hashtbl.remove t.pos_cache id;
      if reachable t id then begin
        if Doc.is_element t.doc id then add_subtree t id
        else begin
          match (Doc.kind t.doc id, p) with
          | Doc.Text s, p when p <> Doc.no_node -> text_added t p s
          | _ -> ()
        end
      end
    | Doc.Detaching id ->
      (* fired pre-splice: the parent link still proves reachability *)
      let p = Doc.parent t.doc id in
      invalidate_under t p;
      if reachable t id then begin
        if Doc.is_element t.doc id then remove_subtree t id
        else begin
          match (Doc.kind t.doc id, p) with
          | Doc.Text s, p when p <> Doc.no_node -> text_removed t p s
          | _ -> ()
        end
      end;
      purge_caches t id
    | Doc.Attr_set (id, _) ->
      if reachable t id && Doc.is_element t.doc id then refresh_attrs t id
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let raw doc =
  {
    doc;
    built = false;
    by_name = Hashtbl.create 64;
    by_attr = Hashtbl.create 64;
    by_text = Hashtbl.create 256;
    indexed_attrs = Hashtbl.create 64;
    indexed_texts = Hashtbl.create 256;
    child_cache = Hashtbl.create 64;
    pos_cache = Hashtbl.create 256;
    stats = { hits = 0; misses = 0; fallbacks = 0; events = 0 };
  }

let build t =
  List.iter (add_subtree t) (Doc.roots t.doc);
  t.built <- true

let create doc =
  let t = raw doc in
  Doc.set_observer doc (Some (on_event t));
  t

let detach t = Doc.set_observer t.doc None

let doc t = t.doc
let built t = t.built

let ensure_built t =
  if not t.built then begin
    t.stats.misses <- t.stats.misses + 1;
    build t
  end

(* ------------------------------------------------------------------ *)
(* Lookups                                                             *)
(* ------------------------------------------------------------------ *)

let sorted_view t b =
  match b.cache with
  | Some l -> l
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    let l = Doc.sort_doc_order t.doc b.ids in
    b.cache <- Some l;
    l

let lookup t tbl key =
  ensure_built t;
  t.stats.hits <- t.stats.hits + 1;
  match Hashtbl.find_opt tbl key with
  | None -> []
  | Some b -> sorted_view t b

let by_name t tag = lookup t t.by_name tag

let descendants_named t tag =
  (* the //tag node-set: named elements that are proper descendants of a
     root (the roots themselves are never results of a child step) *)
  List.filter (fun id -> Doc.parent t.doc id <> Doc.no_node) (by_name t tag)

let by_attr t ~tag ~attr value = lookup t t.by_attr (tag, attr, value)
let by_pcdata t ~tag value = lookup t t.by_text (tag, value)

let children_named t p tag =
  ensure_built t;
  t.stats.hits <- t.stats.hits + 1;
  let per_parent =
    match Hashtbl.find_opt t.child_cache p with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 4 in
      Hashtbl.replace t.child_cache p h;
      h
  in
  match Hashtbl.find_opt per_parent tag with
  | Some l -> l
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    let l =
      List.filter
        (fun c -> Doc.is_element t.doc c && Doc.name t.doc c = tag)
        (Doc.children t.doc p)
    in
    Hashtbl.replace per_parent tag l;
    l

let position t id =
  ensure_built t;
  t.stats.hits <- t.stats.hits + 1;
  match Hashtbl.find_opt t.pos_cache id with
  | Some p -> p
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    let p = Doc.position t.doc id in
    Hashtbl.replace t.pos_cache id p;
    p

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let note_fallback t = t.stats.fallbacks <- t.stats.fallbacks + 1
let stats t = t.stats

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.fallbacks <- 0;
  t.stats.events <- 0

let stats_line t =
  Printf.sprintf "index: %d hits, %d misses, %d fallbacks" t.stats.hits
    t.stats.misses t.stats.fallbacks

(* ------------------------------------------------------------------ *)
(* Consistency audit (for tests)                                       *)
(* ------------------------------------------------------------------ *)

let norm_tbl tbl =
  Hashtbl.fold (fun k (b : bucket) acc -> (k, List.sort compare b.ids) :: acc) tbl []
  |> List.sort compare

let consistency_errors t =
  if not t.built then []
  else begin
    let fresh = raw t.doc in
    build fresh;
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    let diff what a b =
      let a = norm_tbl a and b = norm_tbl b in
      if a <> b then err "%s diverges from a from-scratch rebuild" what
    in
    diff "by_name" t.by_name fresh.by_name;
    diff "by_attr" t.by_attr fresh.by_attr;
    diff "by_text" t.by_text fresh.by_text;
    Hashtbl.iter
      (fun p per ->
        if not (Doc.live t.doc p) then err "child cache holds dead node %d" p
        else
          Hashtbl.iter
            (fun tag l ->
              let expect =
                List.filter
                  (fun c -> Doc.is_element t.doc c && Doc.name t.doc c = tag)
                  (Doc.children t.doc p)
              in
              if l <> expect then err "stale child cache for node %d/%s" p tag)
            per)
      t.child_cache;
    Hashtbl.iter
      (fun id pos ->
        if not (Doc.live t.doc id) then err "position cache holds dead node %d" id
        else if pos <> Doc.position t.doc id then
          err "stale position cache for node %d" id)
      t.pos_cache;
    List.rev !errs
  end

let consistent t = consistency_errors t = []
