(* Secondary indexes over an arena document.

   Nothing is computed until the first lookup (documents that are only
   parsed and validated never pay for indexing); from then on the tables
   are maintained incrementally from the document's mutation events, so
   XUpdate application, undo, savepoint rollback and crash recovery all
   leave them consistent without cooperation from those layers.

   All tables are keyed by interned names (Symbol.t), so a lookup hashes
   and compares small ints, never strings; the string-keyed entry points
   below intern at the boundary.

   Membership invariant: the value tables (by_name / by_attr / by_text)
   contain exactly the elements reachable from the document's roots.
   Detached subtrees enter when (re)attached and leave when detached,
   keyed off Doc.Attached / Doc.Detaching — the latter fires before the
   splice, while the parent chain still proves reachability. *)

module Symbol = Xic_symbol.Symbol

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable fallbacks : int;
  mutable events : int;
}

(* [ids] is a multiset (an element with two identical text children
   appears twice in its by_text bucket, once per child); [cache] is the
   deduplicated document-order view handed to lookups. *)
type bucket = {
  mutable ids : Doc.node_id list;
  mutable cache : Doc.node_id list option;
}

type t = {
  doc : Doc.t;
  mutable built : bool;
  (* [shared] marks a read-only phase during which several domains query
     the index concurrently: every lookup answers from the prewarmed
     tables, or recomputes locally without writing a cache. *)
  mutable shared : bool;
  by_name : (Symbol.t, bucket) Hashtbl.t;
  by_attr : (Symbol.t * Symbol.t * string, bucket) Hashtbl.t;  (* tag, attr, value *)
  by_text : (Symbol.t * string, bucket) Hashtbl.t;             (* tag, text-child value *)
  (* per-node shadow of what the value tables hold, so removal never needs
     the pre-mutation attribute list or text content *)
  indexed_attrs : (Doc.node_id, (Symbol.t * string) list) Hashtbl.t;
  indexed_texts : (Doc.node_id, string list) Hashtbl.t;
  (* parent/child-position caches, invalidated whenever the parent's child
     list changes *)
  child_cache : (Doc.node_id, (Symbol.t, Doc.node_id list) Hashtbl.t) Hashtbl.t;
  pos_cache : (Doc.node_id, int) Hashtbl.t;
  (* document-order rank of every reachable node, indexed by arena id
     (-1 = unranked); dropped wholesale on any structural change *)
  mutable order : int array option;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Bucket primitives                                                   *)
(* ------------------------------------------------------------------ *)

let bucket_add tbl key id =
  match Hashtbl.find_opt tbl key with
  | Some b ->
    b.ids <- id :: b.ids;
    b.cache <- None
  | None -> Hashtbl.replace tbl key { ids = [ id ]; cache = None }

(* Remove one occurrence (the multiset discipline). *)
let bucket_remove tbl key id =
  match Hashtbl.find_opt tbl key with
  | Some b ->
    let rec rm = function
      | [] -> []
      | x :: rest -> if x = id then rest else x :: rm rest
    in
    b.ids <- rm b.ids;
    b.cache <- None;
    if b.ids = [] then Hashtbl.remove tbl key
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

let rec top_of doc id =
  let p = Doc.parent doc id in
  if p = Doc.no_node then id else top_of doc p

let reachable t id = Doc.live t.doc id && List.mem (top_of t.doc id) (Doc.roots t.doc)

(* ------------------------------------------------------------------ *)
(* Entry maintenance                                                   *)
(* ------------------------------------------------------------------ *)

let text_children t id =
  List.filter_map
    (fun c -> match Doc.kind t.doc c with Doc.Text s -> Some s | Doc.Element _ -> None)
    (Doc.children t.doc id)

let add_element t id =
  let tag = Doc.tag t.doc id in
  bucket_add t.by_name tag id;
  (match Doc.attrs_sym t.doc id with
   | [] -> ()
   | attrs ->
     Hashtbl.replace t.indexed_attrs id attrs;
     List.iter (fun (k, v) -> bucket_add t.by_attr (tag, k, v) id) attrs);
  match text_children t id with
  | [] -> ()
  | texts ->
    Hashtbl.replace t.indexed_texts id texts;
    List.iter (fun s -> bucket_add t.by_text (tag, s) id) texts

let remove_element t id =
  let tag = Doc.tag t.doc id in
  bucket_remove t.by_name tag id;
  (match Hashtbl.find_opt t.indexed_attrs id with
   | Some attrs ->
     List.iter (fun (k, v) -> bucket_remove t.by_attr (tag, k, v) id) attrs;
     Hashtbl.remove t.indexed_attrs id
   | None -> ());
  match Hashtbl.find_opt t.indexed_texts id with
  | Some ts ->
    List.iter (fun s -> bucket_remove t.by_text (tag, s) id) ts;
    Hashtbl.remove t.indexed_texts id
  | None -> ()

let rec add_subtree t id =
  if Doc.is_element t.doc id then begin
    add_element t id;
    List.iter (add_subtree t) (Doc.children t.doc id)
  end

let rec remove_subtree t id =
  if Doc.is_element t.doc id then begin
    remove_element t id;
    List.iter (remove_subtree t) (Doc.children t.doc id)
  end

(* Caches keyed by nodes of the [id] subtree, dropped even for
   unreachable subtrees (a cached detached node may be freed without ever
   becoming reachable again). *)
let rec purge_caches t id =
  Hashtbl.remove t.child_cache id;
  Hashtbl.remove t.pos_cache id;
  List.iter (purge_caches t) (Doc.children t.doc id)

(* The child list of [p] changed: positional knowledge about any of its
   children (current or just-spliced) is stale. *)
let invalidate_under t p =
  if p <> Doc.no_node && Doc.live t.doc p then begin
    Hashtbl.remove t.child_cache p;
    List.iter (fun c -> Hashtbl.remove t.pos_cache c) (Doc.children t.doc p)
  end

(* Single text child attached to / detached from an indexed element. *)
let text_added t parent s =
  if Doc.is_element t.doc parent then begin
    let tag = Doc.tag t.doc parent in
    bucket_add t.by_text (tag, s) parent;
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.indexed_texts parent) in
    Hashtbl.replace t.indexed_texts parent (s :: prev)
  end

let text_removed t parent s =
  if Doc.is_element t.doc parent then begin
    let tag = Doc.tag t.doc parent in
    bucket_remove t.by_text (tag, s) parent;
    match Hashtbl.find_opt t.indexed_texts parent with
    | None -> ()
    | Some ts ->
      let rec rm = function
        | [] -> []
        | x :: rest -> if x = s then rest else x :: rm rest
      in
      (match rm ts with
       | [] -> Hashtbl.remove t.indexed_texts parent
       | ts' -> Hashtbl.replace t.indexed_texts parent ts')
  end

let refresh_attrs t id =
  let tag = Doc.tag t.doc id in
  (match Hashtbl.find_opt t.indexed_attrs id with
   | Some attrs ->
     List.iter (fun (k, v) -> bucket_remove t.by_attr (tag, k, v) id) attrs;
     Hashtbl.remove t.indexed_attrs id
   | None -> ());
  match Doc.attrs_sym t.doc id with
  | [] -> ()
  | attrs ->
    Hashtbl.replace t.indexed_attrs id attrs;
    List.iter (fun (k, v) -> bucket_add t.by_attr (tag, k, v) id) attrs

(* ------------------------------------------------------------------ *)
(* Event handling                                                      *)
(* ------------------------------------------------------------------ *)

let on_event t e =
  (* the rank table has its own lifecycle: it may exist before the value
     tables are built, and any splice staleness it *)
  (match e with
   | Doc.Attached _ | Doc.Detaching _ -> t.order <- None
   | Doc.Attr_set _ -> ());
  if t.built then begin
    t.stats.events <- t.stats.events + 1;
    match e with
    | Doc.Attached id ->
      let p = Doc.parent t.doc id in
      invalidate_under t p;
      Hashtbl.remove t.pos_cache id;
      if reachable t id then begin
        if Doc.is_element t.doc id then add_subtree t id
        else begin
          match (Doc.kind t.doc id, p) with
          | Doc.Text s, p when p <> Doc.no_node -> text_added t p s
          | _ -> ()
        end
      end
    | Doc.Detaching id ->
      (* fired pre-splice: the parent link still proves reachability *)
      let p = Doc.parent t.doc id in
      invalidate_under t p;
      if reachable t id then begin
        if Doc.is_element t.doc id then remove_subtree t id
        else begin
          match (Doc.kind t.doc id, p) with
          | Doc.Text s, p when p <> Doc.no_node -> text_removed t p s
          | _ -> ()
        end
      end;
      purge_caches t id
    | Doc.Attr_set (id, _) ->
      if reachable t id && Doc.is_element t.doc id then refresh_attrs t id
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let raw doc =
  {
    doc;
    built = false;
    shared = false;
    by_name = Hashtbl.create 64;
    by_attr = Hashtbl.create 64;
    by_text = Hashtbl.create 256;
    indexed_attrs = Hashtbl.create 64;
    indexed_texts = Hashtbl.create 256;
    child_cache = Hashtbl.create 64;
    pos_cache = Hashtbl.create 256;
    order = None;
    stats = { hits = 0; misses = 0; fallbacks = 0; events = 0 };
  }

let c_index_builds = Xic_obs.Obs.Metrics.counter "index_builds"

let build t =
  Xic_obs.Obs.Trace.with_span "index:build" (fun () ->
      Xic_obs.Obs.Metrics.incr c_index_builds;
      List.iter (add_subtree t) (Doc.roots t.doc);
      t.built <- true)

let create doc =
  let t = raw doc in
  Doc.set_observer doc (Some (on_event t));
  t

let detach t = Doc.set_observer t.doc None

let doc t = t.doc
let built t = t.built

let ensure_built t =
  if not t.built then begin
    t.stats.misses <- t.stats.misses + 1;
    build t
  end

(* ------------------------------------------------------------------ *)
(* Document order                                                      *)
(* ------------------------------------------------------------------ *)

(* One DFS assigns every reachable node its document-order rank.
   Sorting an n-element probe result then costs n array reads, where
   [Doc.order_key] walks each node to its root and scans every
   ancestor's child list — quadratic under wide elements. *)
let build_order t =
  let arr = Array.make (max 1 (Doc.id_bound t.doc)) (-1) in
  let n = ref 0 in
  let rec dfs id =
    arr.(id) <- !n;
    incr n;
    List.iter dfs (Doc.children t.doc id)
  in
  List.iter dfs (Doc.roots t.doc);
  arr

let order_table t =
  match t.order with
  | Some arr -> Some arr
  | None ->
    if t.shared then None (* never write during a concurrent phase *)
    else begin
      t.stats.misses <- t.stats.misses + 1;
      let arr = build_order t in
      t.order <- Some arr;
      Some arr
    end

(* Ranks are unique per node, so comparing ranks alone both orders and
   deduplicates.  A node outside the table (detached, or allocated after
   the last build) defers the whole list to [Doc.sort_doc_order], which
   ranks detached subtrees after all roots. *)
let sort_doc_order t ids =
  match ids with
  | [] | [ _ ] -> ids
  | _ -> (
    match order_table t with
    | None -> Doc.sort_doc_order t.doc ids
    | Some arr ->
      let bound = Array.length arr in
      let rec keyed acc = function
        | [] -> Some acc
        | id :: rest ->
          let r = if id >= 0 && id < bound then arr.(id) else -1 in
          if r < 0 then None else keyed ((r, id) :: acc) rest
      in
      (match keyed [] ids with
       | None -> Doc.sort_doc_order t.doc ids
       | Some pairs ->
         List.sort_uniq (fun ((a : int), _) (b, _) -> Stdlib.compare a b) pairs
         |> List.map snd))

let doc_order_compare t a b =
  if a = b then 0
  else
    match order_table t with
    | None -> Doc.doc_order_compare t.doc a b
    | Some arr ->
      let bound = Array.length arr in
      let ra = if a >= 0 && a < bound then arr.(a) else -1 in
      let rb = if b >= 0 && b < bound then arr.(b) else -1 in
      if ra < 0 || rb < 0 then Doc.doc_order_compare t.doc a b
      else Stdlib.compare ra rb

(* ------------------------------------------------------------------ *)
(* Lookups                                                             *)
(* ------------------------------------------------------------------ *)

let sorted_view t b =
  match b.cache with
  | Some l -> l
  | None ->
    let l = sort_doc_order t b.ids in
    if t.shared then l  (* never write during a concurrent phase *)
    else begin
      t.stats.misses <- t.stats.misses + 1;
      b.cache <- Some l;
      l
    end

let lookup t tbl key =
  ensure_built t;
  if not t.shared then t.stats.hits <- t.stats.hits + 1;
  match Hashtbl.find_opt tbl key with
  | None -> []
  | Some b -> sorted_view t b

let by_name_sym t tag = lookup t t.by_name tag
let by_name t tag = by_name_sym t (Symbol.intern tag)

let descendants_named_sym t tag =
  (* the //tag node-set: named elements that are proper descendants of a
     root (the roots themselves are never results of a child step) *)
  List.filter (fun id -> Doc.parent t.doc id <> Doc.no_node) (by_name_sym t tag)

let descendants_named t tag = descendants_named_sym t (Symbol.intern tag)

let by_attr_sym t ~tag ~attr value = lookup t t.by_attr (tag, attr, value)

let by_attr t ~tag ~attr value =
  by_attr_sym t ~tag:(Symbol.intern tag) ~attr:(Symbol.intern attr) value

let by_pcdata_sym t ~tag value = lookup t t.by_text (tag, value)
let by_pcdata t ~tag value = by_pcdata_sym t ~tag:(Symbol.intern tag) value

let scan_children_named t p tag =
  List.filter
    (fun c -> Doc.is_element t.doc c && Symbol.equal (Doc.tag t.doc c) tag)
    (Doc.children t.doc p)

let children_named_sym t p tag =
  ensure_built t;
  if t.shared then begin
    (* read-only: serve the cache when present, else recompute locally *)
    match Hashtbl.find_opt t.child_cache p with
    | Some per ->
      (match Hashtbl.find_opt per tag with
       | Some l -> l
       | None -> scan_children_named t p tag)
    | None -> scan_children_named t p tag
  end
  else begin
    t.stats.hits <- t.stats.hits + 1;
    let per_parent =
      match Hashtbl.find_opt t.child_cache p with
      | Some h -> h
      | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace t.child_cache p h;
        h
    in
    match Hashtbl.find_opt per_parent tag with
    | Some l -> l
    | None ->
      t.stats.misses <- t.stats.misses + 1;
      let l = scan_children_named t p tag in
      Hashtbl.replace per_parent tag l;
      l
  end

let children_named t p tag = children_named_sym t p (Symbol.intern tag)

let position t id =
  ensure_built t;
  if t.shared then begin
    match Hashtbl.find_opt t.pos_cache id with
    | Some p -> p
    | None -> Doc.position t.doc id
  end
  else begin
    t.stats.hits <- t.stats.hits + 1;
    match Hashtbl.find_opt t.pos_cache id with
    | Some p -> p
    | None ->
      t.stats.misses <- t.stats.misses + 1;
      let p = Doc.position t.doc id in
      Hashtbl.replace t.pos_cache id p;
      p
  end

(* ------------------------------------------------------------------ *)
(* Shared (read-only, multi-domain) phase                              *)
(* ------------------------------------------------------------------ *)

let prepare_shared t =
  ensure_built t;
  (* prewarm the rank table and every bucket's sorted view so concurrent
     lookups find the tables fully materialized and never need to write *)
  ignore (order_table t);
  let warm tbl = Hashtbl.iter (fun _ b -> ignore (sorted_view t b)) tbl in
  warm t.by_name;
  warm t.by_attr;
  warm t.by_text;
  t.shared <- true

let unshare t = t.shared <- false
let shared t = t.shared

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let note_fallback t = if not t.shared then t.stats.fallbacks <- t.stats.fallbacks + 1
let stats t = t.stats

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.fallbacks <- 0;
  t.stats.events <- 0

let stats_line t =
  Printf.sprintf "index: %d hits, %d misses, %d fallbacks" t.stats.hits
    t.stats.misses t.stats.fallbacks

(* ------------------------------------------------------------------ *)
(* Consistency audit (for tests)                                       *)
(* ------------------------------------------------------------------ *)

let norm_tbl tbl =
  Hashtbl.fold (fun k (b : bucket) acc -> (k, List.sort compare b.ids) :: acc) tbl []
  |> List.sort compare

let consistency_errors t =
  if not t.built then []
  else begin
    let fresh = raw t.doc in
    build fresh;
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    let diff what a b =
      let a = norm_tbl a and b = norm_tbl b in
      if a <> b then err "%s diverges from a from-scratch rebuild" what
    in
    diff "by_name" t.by_name fresh.by_name;
    diff "by_attr" t.by_attr fresh.by_attr;
    diff "by_text" t.by_text fresh.by_text;
    Hashtbl.iter
      (fun p per ->
        if not (Doc.live t.doc p) then err "child cache holds dead node %d" p
        else
          Hashtbl.iter
            (fun tag l ->
              let expect = scan_children_named t p tag in
              if l <> expect then
                err "stale child cache for node %d/%s" p (Symbol.name tag))
            per)
      t.child_cache;
    Hashtbl.iter
      (fun id pos ->
        if not (Doc.live t.doc id) then err "position cache holds dead node %d" id
        else if pos <> Doc.position t.doc id then
          err "stale position cache for node %d" id)
      t.pos_cache;
    List.rev !errs
  end

let consistent t = consistency_errors t = []
