(** Arena-based XML document store.

    Every node carries a unique integer identifier, a parent link and an
    ordered list of children, which is exactly the information exposed by
    the relational mapping of Section 4.1 of the paper (node id, position,
    parent id).  The store is mutable so that XUpdate statements can be
    applied and rolled back in place. *)

module Symbol = Xic_symbol.Symbol
(** Tag and attribute names are interned ({!Xic_symbol.Symbol}) so that
    name tests in the evaluators and index keys compare and hash as
    ints. *)

type node_id = int
(** Unique, never reused within a document. *)

val no_node : node_id
(** Sentinel parent id for detached nodes and the document root. *)

(** Payload of a node. *)
type kind =
  | Element of Symbol.t  (** interned tag name *)
  | Text of string       (** character data *)

type t
(** A mutable document: an arena of nodes plus a distinguished root
    element. *)

(** Structural-change notification, for secondary indexes ({!Index}).
    [Attached] and [Attr_set] fire {e after} the mutation; [Detaching]
    fires {e before} it, while the node's parent link and the sibling
    list are still intact, so a subscriber can locate the entries it has
    to drop. *)
type event =
  | Attached of node_id   (** gained a parent, or became a root *)
  | Detaching of node_id  (** about to lose its parent / root status *)
  | Attr_set of node_id * Symbol.t  (** attribute [name] was (re)assigned *)

val set_observer : t -> (event -> unit) option -> unit
(** Install (or clear) the primary mutation observer (the secondary
    index's reserved slot).  Every structural mutator — [set_root],
    [add_root], [append_child(ren)], [insert_after/before], [detach],
    [delete_subtree], [set_attr] — notifies every observer, so XUpdate
    application, undo, savepoint rollback and crash recovery all keep
    subscribers current without cooperation from the caller.  {!copy}
    does not carry observers over. *)

val subscribe : t -> (event -> unit) -> int
(** Register a further mutation observer alongside the {!set_observer}
    slot (the Datalog store mirror uses this).  Observers are notified in
    subscription order, the {!set_observer} slot first.  Returns a token
    for {!unsubscribe}. *)

val unsubscribe : t -> int -> unit
(** Remove the observer registered under this token.  Unknown tokens are
    ignored. *)

val create : ?capacity:int -> unit -> t
(** An empty document with no root element yet.  [capacity] preallocates
    the arena columns for that many nodes (the parser derives it from the
    input byte length so a cold load never regrows mid-parse). *)

val set_root : t -> node_id -> unit
(** Declare [id] as the document's only root element (replacing any
    previous roots).  Raises [Invalid_argument] if [id] is not a live
    element node. *)

val add_root : t -> node_id -> unit
(** Add a further root element: the arena then models a {e collection} of
    documents sharing one id space (as an XQuery engine's collection); all
    roots are children of the virtual document node for absolute paths. *)

val root : t -> node_id
(** The first root element.  Raises [Invalid_argument] if none was set. *)

val roots : t -> node_id list
(** All root elements, in registration order. *)

val has_root : t -> bool

val make_element : t -> ?attrs:(string * string) list -> string -> node_id
(** Allocate a detached element node. *)

val make_element_sym : t -> ?attrs:(Symbol.t * string) list -> Symbol.t -> node_id
(** As {!make_element}, with names already interned — the parser's fast
    path (tags come straight off the source buffer via
    [Symbol.intern_sub]). *)

val make_text : t -> string -> node_id
(** Allocate a detached text node. *)

val kind : t -> node_id -> kind
val parent : t -> node_id -> node_id
(** [no_node] for the root element and detached nodes. *)

val children : t -> node_id -> node_id list
(** All children (elements and text) in document order. *)

val iter_children : t -> node_id -> (node_id -> unit) -> unit
(** Iterate over the children in document order without materialising a
    list — the non-allocating walk for hot loops (shredding, printing,
    text aggregation).  The callback must not mutate this node's child
    list; use {!children} to snapshot first when it does. *)

val element_children : t -> node_id -> node_id list

val attrs : t -> node_id -> (string * string) list
(** Attribute list with names resolved back to strings (allocates; hot
    paths should prefer {!attrs_sym}). *)

val attrs_sym : t -> node_id -> (Symbol.t * string) list
(** The stored attribute list, interned keys, no allocation. *)

val attr : t -> node_id -> string -> string option
val attr_sym : t -> node_id -> Symbol.t -> string option
val set_attr : t -> node_id -> string -> string -> unit

val is_element : t -> node_id -> bool
val is_text : t -> node_id -> bool

val name : t -> node_id -> string
(** Tag name of an element; raises [Invalid_argument] on text nodes. *)

val tag : t -> node_id -> Symbol.t
(** Interned tag name of an element; raises [Invalid_argument] on text
    nodes.  [Symbol.name (tag doc id) = name doc id]. *)

val live : t -> node_id -> bool
(** False for ids that were never allocated or have been deleted. *)

val append_child : t -> parent:node_id -> node_id -> unit
(** Attach a detached node as last child.  Raises [Invalid_argument] if the
    child is already attached. *)

val append_children : t -> parent:node_id -> node_id list -> unit
(** Attach several detached nodes as last children, in order, in one list
    splice (building an n-ary node with repeated {!append_child} would be
    quadratic). *)

val insert_after : t -> anchor:node_id -> node_id -> unit
(** Attach a detached node as the sibling immediately following [anchor]. *)

val insert_before : t -> anchor:node_id -> node_id -> unit

val detach : t -> node_id -> unit
(** Remove a node from its parent's child list (the node and its subtree
    stay alive and can be re-attached; used by rollback). *)

val delete_subtree : t -> node_id -> unit
(** Detach and free a node and all its descendants. *)

val position : t -> node_id -> int
(** 1-based index among the *element* children of the parent, which is the
    [Pos] attribute of the relational mapping.  Text nodes and the root
    report position 1. *)

val text_content : t -> node_id -> string
(** Concatenation of all descendant text, as XPath's [string()]. *)

val descendants : t -> node_id -> node_id list
(** Proper descendants, document order. *)

val descendant_or_self : t -> node_id -> node_id list

val following_siblings : t -> node_id -> node_id list
val preceding_siblings : t -> node_id -> node_id list
(** Both in document order (preceding siblings are returned closest-last,
    i.e. still in document order). *)

val ancestors : t -> node_id -> node_id list
(** Proper ancestors, nearest first. *)

val doc_order_compare : t -> node_id -> node_id -> int
(** Total order consistent with document order for attached nodes. *)

val sort_doc_order : t -> node_id list -> node_id list
(** Sort and deduplicate a node list into document order. *)

val node_count : t -> int
(** Number of live nodes. *)

val id_bound : t -> int
(** Exclusive upper bound on every node id allocated so far (dense arena
    ids), for callers keeping id-indexed side tables. *)

val iter_nodes : t -> (node_id -> unit) -> unit
(** Iterate over all live nodes in allocation order. *)

val copy : t -> t
(** Deep structural copy preserving node ids. *)

val equal_structure : t -> t -> bool
(** Structural equality of the trees reachable from the roots (ignores ids,
    compares tags, attribute sets, text and child order). *)

val serialize : t -> Buffer.t -> unit
(** Append the arena's binary image (all columns, pools and roots) to the
    buffer, node ids preserved — see [Xic_snapshot.Snapshot] for the
    enclosing checksummed container.  Tag and attribute names are stored
    as symbol {e ids}; the snapshot layer persists the symbol table
    alongside and remaps on load. *)

val restore : t -> remap:Symbol.t array -> Xic_symbol.Wire.cursor -> unit
(** Rebuild a serialized arena in place into [t], which must be empty
    (freshly created).  [remap.(id)] is the loading process's symbol for
    stored symbol id [id] (interning histories differ between
    processes); an array rather than a function because the translation
    loop touches every node.  A stored id outside the array is a
    malformed image.  Node ids come back unchanged, so stored node-id
    references (the Datalog mirror, journal replays) stay valid.  No
    observer notifications fire.
    @raise Invalid_argument on a non-empty document or a malformed image;
    @raise Xic_symbol.Wire.Error on truncated input. *)

val transplant : into:t -> t -> unit
(** Move [src]'s arena into [into] (which must be empty), leaving [src]
    empty.  O(1): the column arrays change owner, nothing is copied.
    The snapshot loader restores into a scratch document and transplants
    only once every section has decoded, so a caller's document is never
    left half-restored by a failed load.  [into]'s observer is kept.
    @raise Invalid_argument if [into] is not empty. *)
