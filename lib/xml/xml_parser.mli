(** XML 1.0 subset parser producing a {!Doc.t} arena document.

    Supported: elements, attributes (single or double quoted), character
    data, CDATA sections, comments, processing instructions (skipped), the
    XML declaration, an optional internal or external DOCTYPE declaration
    (element declarations are exposed as raw text for {!Dtd}), and the five
    predefined entities plus decimal/hexadecimal character references.

    Not supported (rejected or ignored as noted): namespaces are treated as
    plain prefixed names; user-defined entity declarations are rejected. *)

exception Parse_error of { line : int; col : int; msg : string }
(** Locations are computed lazily: the parser tracks only a byte offset
    and recovers line/col from it when raising, so the happy path pays
    nothing for error reporting. *)

type result = {
  doc : Doc.t;
  dtd_text : string option;
      (** Raw text between the brackets of an internal DTD subset, if any. *)
}

type sink = Doc.node_id -> pos:int -> unit
(** Streaming consumer of parsed elements, called once per element as its
    close tag (or self-closing [/>]) completes — its attributes, children
    and embedded text already exist in the document, and its parent link
    is set (except for the root).  [pos] is the element's 1-based
    position among its parent's element children (1 for the root), which
    the parser tracks for free — so a shredder never recomputes
    positions.  Elements arrive in close-tag (post) order. *)

val parse_string : ?keep_ws:bool -> string -> result
(** Parse a complete document.  Unless [keep_ws] is set, text nodes that
    consist solely of whitespace are dropped (the running-example DTDs are
    element-content only, where such whitespace is insignificant).
    @raise Parse_error on malformed input. *)

val parse_file : ?keep_ws:bool -> string -> result

val parse_document_into :
  ?keep_ws:bool -> ?sink:sink -> Doc.t -> string -> Doc.node_id * string option
(** Fused single-pass loader: parse a complete document (prolog, one root
    element, trailing misc) allocating nodes directly into an existing
    arena, feeding every completed element to [sink].  Nodes are
    allocated in pre-order and attached on their open tag — no child-list
    accumulation, no second walk; names are interned straight off the
    source buffer.  Returns the (detached) root and the internal DTD
    subset; the caller decides whether to register the root
    ({!Doc.add_root}).  On [Parse_error] the partially built subtree
    stays allocated but unreachable (never registered as a root).
    @raise Parse_error on malformed input; anything [sink] raises
    propagates. *)

val parse_fragment : Doc.t -> string -> Doc.node_id list
(** Parse a well-formed sequence of elements/text (no prolog) allocating the
    nodes inside an existing document; returns the detached top-level nodes.
    Used by XUpdate content construction.
    @raise Parse_error on malformed input. *)

val unescape : string -> string
(** Resolve predefined entities and character references in attribute or
    text content.  Raises [Failure] on unknown entities. *)
