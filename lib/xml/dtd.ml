type occur =
  | One
  | Opt
  | Star
  | Plus

type particle =
  | Name of string * occur
  | Seq of particle list * occur
  | Choice of particle list * occur

type content =
  | PCData
  | Mixed of string list
  | Children of particle
  | Empty
  | Any

type attr_decl = {
  attr_name : string;
  required : bool;
}

type element_decl = {
  elem_name : string;
  content : content;
  attlist : attr_decl list;
}

type t = {
  decls : element_decl list;
  by_name : (string, element_decl) Hashtbl.t;
}

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type pstate = { src : string; mutable pos : int }

let peek st = if st.pos >= String.length st.src then '\000' else st.src.[st.pos]

let advance st = st.pos <- st.pos + 1

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while st.pos < String.length st.src && is_ws (peek st) do
    advance st
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':' || c = '#'

let parse_name st =
  skip_ws st;
  let start = st.pos in
  while st.pos < String.length st.src && is_name_char (peek st) do
    advance st
  done;
  if st.pos = start then fail "expected a name at offset %d" start;
  String.sub st.src start (st.pos - start)

let parse_occur st =
  match peek st with
  | '?' -> advance st; Opt
  | '*' -> advance st; Star
  | '+' -> advance st; Plus
  | _ -> One

let with_occur p occ =
  match p with
  | Name (n, One) -> Name (n, occ)
  | Seq (ps, One) -> Seq (ps, occ)
  | Choice (ps, One) -> Choice (ps, occ)
  | _ when occ = One -> p
  | _ -> Seq ([ p ], occ)

let rec parse_cp st =
  skip_ws st;
  if peek st = '(' then begin
    advance st;
    let group = parse_group st in
    let occ = parse_occur st in
    with_occur group occ
  end
  else begin
    let n = parse_name st in
    let occ = parse_occur st in
    Name (n, occ)
  end

and parse_group st =
  let first = parse_cp st in
  skip_ws st;
  match peek st with
  | ')' -> advance st; first
  | '|' ->
    let rec alts acc =
      skip_ws st;
      match peek st with
      | '|' ->
        advance st;
        alts (parse_cp st :: acc)
      | ')' -> advance st; List.rev acc
      | c -> fail "unexpected %C in choice group" c
    in
    Choice (alts [ first ], One)
  | ',' ->
    let rec items acc =
      skip_ws st;
      match peek st with
      | ',' ->
        advance st;
        items (parse_cp st :: acc)
      | ')' -> advance st; List.rev acc
      | c -> fail "unexpected %C in sequence group" c
    in
    Seq (items [ first ], One)
  | c -> fail "unexpected %C in content group" c

let parse_content st =
  skip_ws st;
  if peek st <> '(' then begin
    let kw = parse_name st in
    match kw with
    | "EMPTY" -> Empty
    | "ANY" -> Any
    | _ -> fail "expected content model, got %S" kw
  end
  else begin
    advance st;
    skip_ws st;
    if peek st = '#' then begin
      let kw = parse_name st in
      if kw <> "#PCDATA" then fail "expected #PCDATA, got %S" kw;
      skip_ws st;
      let rec names acc =
        skip_ws st;
        match peek st with
        | '|' -> advance st; names (parse_name st :: acc)
        | ')' -> advance st; List.rev acc
        | c -> fail "unexpected %C in mixed content" c
      in
      let ns = names [] in
      (* Optional trailing star for mixed content. *)
      if peek st = '*' then advance st;
      if ns = [] then PCData else Mixed ns
    end
    else begin
      (* Rewind the '(' so parse_cp sees the full group. *)
      st.pos <- st.pos - 1;
      Children (parse_cp st)
    end
  end

(* Parse one <!ELEMENT ...> or <!ATTLIST ...> declaration body. *)
let parse_decl st decls attlists =
  skip_ws st;
  if st.pos >= String.length st.src then ()
  else begin
    if not (peek st = '<') then fail "expected '<!' at offset %d" st.pos;
    advance st;
    if peek st <> '!' then fail "expected '<!' at offset %d" st.pos;
    advance st;
    if st.pos + 1 < String.length st.src && peek st = '-' then begin
      (* comment <!-- ... --> *)
      match
        let rec find i =
          if i + 3 > String.length st.src then None
          else if String.sub st.src i 3 = "-->" then Some i
          else find (i + 1)
        in
        find st.pos
      with
      | None -> fail "unterminated comment in DTD"
      | Some i -> st.pos <- i + 3
    end
    else begin
      let kw = parse_name st in
      match kw with
      | "ELEMENT" ->
        let name = parse_name st in
        let content = parse_content st in
        skip_ws st;
        if peek st <> '>' then fail "expected '>' closing ELEMENT %s" name;
        advance st;
        decls := (name, content) :: !decls
      | "ATTLIST" ->
        let elem = parse_name st in
        let rec atts acc =
          skip_ws st;
          if peek st = '>' then begin
            advance st;
            List.rev acc
          end
          else begin
            let aname = parse_name st in
            let _atype = parse_name st in
            skip_ws st;
            let default =
              if peek st = '#' then parse_name st
              else if peek st = '"' || peek st = '\'' then begin
                let q = peek st in
                advance st;
                while peek st <> q && st.pos < String.length st.src do
                  advance st
                done;
                advance st;
                ""
              end
              else ""
            in
            (* #FIXED is followed by a quoted literal. *)
            (if default = "#FIXED" then begin
               skip_ws st;
               if peek st = '"' || peek st = '\'' then begin
                 let q = peek st in
                 advance st;
                 while peek st <> q && st.pos < String.length st.src do
                   advance st
                 done;
                 advance st
               end
             end);
            atts ({ attr_name = aname; required = default = "#REQUIRED" } :: acc)
          end
        in
        attlists := (elem, atts []) :: !attlists
      | _ -> fail "unsupported DTD declaration <!%s" kw
    end
  end

let of_decls decls =
  let by_name = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace by_name d.elem_name d) decls;
  { decls; by_name }

let parse src =
  let st = { src; pos = 0 } in
  let decls = ref [] in
  let attlists = ref [] in
  while skip_ws st; st.pos < String.length st.src do
    parse_decl st decls attlists
  done;
  let attlist_for name =
    List.concat_map (fun (e, atts) -> if e = name then atts else []) (List.rev !attlists)
  in
  let ds =
    List.rev_map
      (fun (name, content) -> { elem_name = name; content; attlist = attlist_for name })
      !decls
  in
  of_decls ds

let declarations t = t.decls
let find t name = Hashtbl.find_opt t.by_name name
let element_names t = List.map (fun d -> d.elem_name) t.decls

(* ------------------------------------------------------------------ *)
(* Content-model analysis                                              *)
(* ------------------------------------------------------------------ *)

type multiplicity =
  | M_one
  | M_opt
  | M_many
  | M_none

(* (min, max) occurrence bounds of [child] in a particle; max is capped at
   2, meaning "more than one". *)
let rec bounds child = function
  | Name (n, occ) -> apply_occ occ (if n = child then (1, 1) else (0, 0))
  | Seq (ps, occ) ->
    let min_, max_ =
      List.fold_left
        (fun (mn, mx) p ->
          let m, x = bounds child p in
          (mn + m, min 2 (mx + x)))
        (0, 0) ps
    in
    apply_occ occ (min_, max_)
  | Choice (ps, occ) ->
    let min_, max_ =
      List.fold_left
        (fun (mn, mx) p ->
          let m, x = bounds child p in
          (min mn m, max mx x))
        (max_int, 0) ps
    in
    let min_ = if min_ = max_int then 0 else min_ in
    apply_occ occ (min_, max_)

and apply_occ occ (mn, mx) =
  match occ with
  | One -> (mn, mx)
  | Opt -> (0, mx)
  | Star -> (0, if mx > 0 then 2 else 0)
  | Plus -> (mn, if mx > 0 then 2 else 0)

let child_multiplicity t ~parent ~child =
  match find t parent with
  | None -> M_none
  | Some d ->
    (match d.content with
     | PCData | Empty -> M_none
     | Any -> M_many
     | Mixed ns -> if List.mem child ns then M_many else M_none
     | Children p ->
       (match bounds child p with
        | _, 0 -> M_none
        | 1, 1 -> M_one
        | 0, 1 -> M_opt
        | _ -> M_many))

let rec particle_names = function
  | Name (n, _) -> [ n ]
  | Seq (ps, _) | Choice (ps, _) -> List.concat_map particle_names ps

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let child_names t name =
  match find t name with
  | None -> []
  | Some d ->
    (match d.content with
     | PCData | Empty | Any -> []
     | Mixed ns -> dedup ns
     | Children p -> dedup (particle_names p))

let is_pcdata_only t name =
  match find t name with
  | Some { content = PCData; _ } -> true
  | _ -> false

let parents_of t name =
  List.filter_map
    (fun d -> if List.mem name (child_names t d.elem_name) then Some d.elem_name else None)
    t.decls

let descendant_types t name =
  let visited = Hashtbl.create 8 in
  let rec go n =
    List.iter
      (fun c ->
        if not (Hashtbl.mem visited c) then begin
          Hashtbl.add visited c ();
          go c
        end)
      (child_names t n)
  in
  go name;
  List.filter (Hashtbl.mem visited) (element_names t)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

(* Backtracking matcher over positions into the child-name array: returns
   the sorted set of positions reachable after consuming a prefix that
   matches the particle. *)
let matches_content p names =
  let arr = Array.of_list names in
  let n = Array.length arr in
  let dedup_pos l = List.sort_uniq compare l in
  let rec go p positions =
    match p with
    | Name (name, occ) ->
      let once ps =
        List.filter_map (fun i -> if i < n && arr.(i) = name then Some (i + 1) else None) ps
      in
      with_occ occ once positions
    | Seq (parts, occ) ->
      let once ps = List.fold_left (fun acc part -> go part acc) ps parts in
      with_occ occ once positions
    | Choice (parts, occ) ->
      let once ps = dedup_pos (List.concat_map (fun part -> go part ps) parts) in
      with_occ occ once positions
  and with_occ occ once positions =
    match occ with
    | One -> once positions
    | Opt -> dedup_pos (positions @ once positions)
    | Star -> star once positions
    | Plus -> star once (once positions)
  and star once positions =
    (* Fixpoint of reachable positions (zero or more iterations); bounded
       by n+1 distinct positions, so this terminates. *)
    let seen = Array.make (n + 2) false in
    List.iter (fun i -> seen.(i) <- true) positions;
    let frontier = ref positions in
    while !frontier <> [] do
      let next =
        once !frontier |> List.filter (fun i -> not seen.(i)) |> dedup_pos
      in
      List.iter (fun i -> seen.(i) <- true) next;
      frontier := next
    done;
    let acc = ref [] in
    for i = n + 1 downto 0 do
      if seen.(i) then acc := i :: !acc
    done;
    !acc
  in
  List.mem n (go p [ 0 ])

let validate ?root:start t doc =
  let start = match start with Some r -> r | None -> Doc.root doc in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let check id =
    match Doc.kind doc id with
    | Doc.Text _ -> ()
    | Doc.Element sym ->
      let tag = Doc.Symbol.name sym in
      (match find t tag with
       | None -> err "undeclared element <%s>" tag
       | Some d ->
         List.iter
           (fun a ->
             if a.required && Doc.attr doc id a.attr_name = None then
               err "<%s> misses required attribute %s" tag a.attr_name)
           d.attlist;
         let kid_elems = List.filter (Doc.is_element doc) (Doc.children doc id) in
         let kid_names = List.map (Doc.name doc) kid_elems in
         let has_text =
           List.exists
             (fun c -> match Doc.kind doc c with Doc.Text _ -> true | _ -> false)
             (Doc.children doc id)
         in
         (match d.content with
          | Empty ->
            if Doc.children doc id <> [] then err "<%s> declared EMPTY has content" tag
          | Any -> ()
          | PCData -> if kid_names <> [] then err "<%s> declared (#PCDATA) has child elements" tag
          | Mixed allowed ->
            List.iter
              (fun n -> if not (List.mem n allowed) then err "<%s> has disallowed child <%s>" tag n)
              kid_names
          | Children p ->
            if has_text then err "<%s> with element content contains text" tag;
            if not (matches_content p kid_names) then
              err "children of <%s> [%s] do not match its content model" tag
                (String.concat " " kid_names)))
  in
  List.iter check (Doc.descendant_or_self doc start);
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let occur_str = function One -> "" | Opt -> "?" | Star -> "*" | Plus -> "+"

let rec particle_str ?(top = false) p =
  match p with
  | Name (n, occ) -> (if top then "(" ^ n ^ ")" else n) ^ occur_str occ
  | Seq (ps, occ) ->
    "(" ^ String.concat ", " (List.map particle_str ps) ^ ")" ^ occur_str occ
  | Choice (ps, occ) ->
    "(" ^ String.concat " | " (List.map particle_str ps) ^ ")" ^ occur_str occ

let content_str = function
  | PCData -> "(#PCDATA)"
  | Mixed ns -> "(#PCDATA | " ^ String.concat " | " ns ^ ")*"
  | Empty -> "EMPTY"
  | Any -> "ANY"
  | Children p -> particle_str ~top:true p

let to_string t =
  String.concat "\n"
    (List.concat_map
       (fun d ->
         let elem = Printf.sprintf "<!ELEMENT %s %s>" d.elem_name (content_str d.content) in
         let atts =
           if d.attlist = [] then []
           else
             [ Printf.sprintf "<!ATTLIST %s %s>" d.elem_name
                 (String.concat " "
                    (List.map
                       (fun a ->
                         Printf.sprintf "%s CDATA %s" a.attr_name
                           (if a.required then "#REQUIRED" else "#IMPLIED"))
                       d.attlist))
             ]
         in
         elem :: atts)
       t.decls)
