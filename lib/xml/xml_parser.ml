module Symbol = Xic_symbol.Symbol

exception Parse_error of { line : int; col : int; msg : string }

type result = {
  doc : Doc.t;
  dtd_text : string option;
}

type sink = Doc.node_id -> pos:int -> unit

(* The state is a bare cursor: no per-character line/col bookkeeping.
   Error locations are recomputed from the failure offset in [fail] —
   the only place that needs them — so the happy path just bumps [pos]. *)
type state = {
  src : string;
  mutable pos : int;
}

let make_state src = { src; pos = 0 }

(* Line/col of a byte offset, 1-based, newline resets the column —
   identical to what the old per-character tracking accumulated. *)
let line_col_of_offset src pos =
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if String.unsafe_get src i = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

let fail st msg =
  let line, col = line_col_of_offset st.src st.pos in
  raise (Parse_error { line; col; msg })

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else String.unsafe_get st.src st.pos

let advance st = if not (eof st) then st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src
  &&
  let rec go i =
    i >= n
    || Char.equal
         (String.unsafe_get st.src (st.pos + i))
         (String.unsafe_get s i)
       && go (i + 1)
  in
  go 0

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  let len = String.length st.src in
  let i = ref st.pos in
  while !i < len && is_ws (String.unsafe_get st.src !i) do
    incr i
  done;
  st.pos <- !i

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

(* Scan a name in place, returning its (start, length) span so callers can
   intern straight off the source buffer without a substring. *)
let parse_name_span st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let len = String.length st.src in
  let start = st.pos in
  let i = ref (start + 1) in
  while !i < len && is_name_char (String.unsafe_get st.src !i) do
    incr i
  done;
  st.pos <- !i;
  (start, !i - start)

let parse_name st =
  let start, len = parse_name_span st in
  String.sub st.src start len

let parse_name_sym st =
  let start, len = parse_name_span st in
  Symbol.intern_sub st.src start len

(* Entity and character reference resolution ------------------------------ *)

let resolve_entity name =
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let code =
        if name.[1] = 'x' || name.[1] = 'X' then
          int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
        else int_of_string (String.sub name 1 (String.length name - 1))
      in
      (* Encode as UTF-8. *)
      let b = Buffer.create 4 in
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end;
      Buffer.contents b
    end
    else failwith (Printf.sprintf "unknown entity &%s;" name)

let unescape s =
  if not (String.contains s '&') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | None -> failwith "unterminated entity reference"
        | Some j ->
          Buffer.add_string b (resolve_entity (String.sub s (!i + 1) (j - !i - 1)));
          i := j + 1
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

(* Unescape the slice [start, stop) of [src]: one substring when it holds
   no reference (the overwhelming case), the buffer path otherwise.  The
   scan must stay bounded by [stop] — [String.index_from_opt] would walk
   to the end of the whole source on reference-free documents. *)
let unescape_range src start stop =
  let rec has_ref i = i < stop && (String.unsafe_get src i = '&' || has_ref (i + 1)) in
  if has_ref start then unescape (String.sub src start (stop - start))
  else String.sub src start (stop - start)

let all_ws_range src start stop =
  let rec go i = i >= stop || (is_ws (String.unsafe_get src i) && go (i + 1)) in
  go start

(* Lexical scanning of document pieces ------------------------------------ *)

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  st.pos <- st.pos + 1;
  let start = st.pos in
  match String.index_from_opt st.src start quote with
  | None ->
    st.pos <- String.length st.src;
    fail st "unterminated attribute value"
  | Some j ->
    st.pos <- j + 1;
    (try unescape_range st.src start j with Failure m -> fail st m)

let parse_attrs_sym st =
  let rec go acc =
    skip_ws st;
    if is_name_start (peek st) then begin
      let k = parse_name_sym st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let v = parse_attr_value st in
      go ((k, v) :: acc)
    end
    else List.rev acc
  in
  go []

let skip_until st stop =
  let n = String.length stop in
  let len = String.length st.src in
  let c0 = String.unsafe_get stop 0 in
  let rec find i =
    if i + n > len then None
    else if
      Char.equal (String.unsafe_get st.src i) c0
      &&
      let rec eq k =
        k >= n
        || Char.equal (String.unsafe_get st.src (i + k)) (String.unsafe_get stop k)
           && eq (k + 1)
      in
      eq 1
    then Some i
    else find (i + 1)
  in
  match find st.pos with
  | None -> fail st (Printf.sprintf "unterminated construct, expected %S" stop)
  | Some i ->
    let text = String.sub st.src st.pos (i - st.pos) in
    st.pos <- i + n;
    text

let skip_comment st =
  expect st "<!--";
  ignore (skip_until st "-->")

let skip_pi st =
  expect st "<?";
  ignore (skip_until st "?>")

(* DOCTYPE: capture the internal subset text, skip external ids. *)
let parse_doctype st =
  expect st "<!DOCTYPE";
  skip_ws st;
  let _name = parse_name st in
  skip_ws st;
  (* Optional SYSTEM/PUBLIC external id: skip quoted strings. *)
  while peek st <> '[' && peek st <> '>' && not (eof st) do
    if peek st = '"' || peek st = '\'' then ignore (parse_attr_value st) else advance st
  done;
  let subset =
    if peek st = '[' then begin
      advance st;
      let text = skip_until st "]" in
      Some text
    end
    else None
  in
  skip_ws st;
  expect st ">";
  subset

(* Content parsing ---------------------------------------------------------

   One fused pass: nodes are allocated in document (pre-order) position —
   elements on their open tag, before their children — and attached to
   the parent immediately, so there is no child-list accumulation or
   reversal and no second walk over the finished tree.  [sink], when
   given, is invoked on each element as its close tag completes (its
   children, hence its embedded text, already exist) with the element's
   1-based position among its parent's element children, which the
   content loop tracks for free. *)

let rec parse_content_into st doc ~keep_ws ~sink parent =
  let elts = ref 0 in
  let continue = ref true in
  while !continue do
    if eof st then continue := false
    else if String.unsafe_get st.src st.pos = '<' then begin
      if looking_at st "</" then continue := false
      else if looking_at st "<!--" then skip_comment st
      else if looking_at st "<![CDATA[" then begin
        st.pos <- st.pos + 9;
        let text = skip_until st "]]>" in
        Doc.append_child doc ~parent (Doc.make_text doc text)
      end
      else if looking_at st "<?" then skip_pi st
      else begin
        incr elts;
        ignore (parse_element_into st doc ~keep_ws ~sink ~pos:!elts ~parent)
      end
    end
    else begin
      let start = st.pos in
      let stop =
        match String.index_from_opt st.src start '<' with
        | None -> String.length st.src
        | Some i -> i
      in
      st.pos <- stop;
      if keep_ws || not (all_ws_range st.src start stop) then begin
        let text =
          try unescape_range st.src start stop with Failure m -> fail st m
        in
        Doc.append_child doc ~parent (Doc.make_text doc text)
      end
    end
  done

and parse_element_into st doc ~keep_ws ~sink ~pos ~parent =
  expect st "<";
  let tag = parse_name_sym st in
  let attrs = parse_attrs_sym st in
  skip_ws st;
  let id = Doc.make_element_sym doc ~attrs tag in
  if parent <> Doc.no_node then Doc.append_child doc ~parent id;
  (if looking_at st "/>" then st.pos <- st.pos + 2
   else begin
     expect st ">";
     parse_content_into st doc ~keep_ws ~sink id;
     expect st "</";
     let close = parse_name_sym st in
     if not (Symbol.equal close tag) then
       fail st
         (Printf.sprintf "mismatched closing tag </%s> for <%s>"
            (Symbol.name close) (Symbol.name tag));
     skip_ws st;
     expect st ">"
   end);
  (match sink with None -> () | Some f -> f id ~pos);
  id

let parse_prolog st =
  let dtd = ref None in
  let continue = ref true in
  while !continue do
    skip_ws st;
    if looking_at st "<?" then skip_pi st
    else if looking_at st "<!--" then skip_comment st
    else if looking_at st "<!DOCTYPE" then dtd := parse_doctype st
    else continue := false
  done;
  !dtd

let parse_document_into ?(keep_ws = false) ?sink doc src =
  let st = make_state src in
  let dtd_text = parse_prolog st in
  skip_ws st;
  if peek st <> '<' then fail st "expected root element";
  let root = parse_element_into st doc ~keep_ws ~sink ~pos:1 ~parent:Doc.no_node in
  skip_ws st;
  while not (eof st) do
    if looking_at st "<!--" then skip_comment st
    else if looking_at st "<?" then skip_pi st
    else fail st "content after root element"
  done;
  (root, dtd_text)

(* ~12 source bytes per node is a conservative fit for element-content
   documents; overshooting merely leaves slack in the arena columns. *)
let capacity_of_bytes len = (len / 12) + 16

let parse_string ?keep_ws src =
  let doc = Doc.create ~capacity:(capacity_of_bytes (String.length src)) () in
  let root, dtd_text = parse_document_into ?keep_ws doc src in
  Doc.set_root doc root;
  { doc; dtd_text }

let parse_file ?keep_ws path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ?keep_ws src

let parse_fragment doc src =
  let st = make_state src in
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    if eof st then continue := false
    else if String.unsafe_get st.src st.pos = '<' then begin
      if looking_at st "</" then continue := false
      else if looking_at st "<!--" then skip_comment st
      else if looking_at st "<![CDATA[" then begin
        st.pos <- st.pos + 9;
        let text = skip_until st "]]>" in
        acc := Doc.make_text doc text :: !acc
      end
      else if looking_at st "<?" then skip_pi st
      else
        acc :=
          parse_element_into st doc ~keep_ws:false ~sink:None ~pos:0
            ~parent:Doc.no_node
          :: !acc
    end
    else begin
      let start = st.pos in
      let stop =
        match String.index_from_opt st.src start '<' with
        | None -> String.length st.src
        | Some i -> i
      in
      st.pos <- stop;
      if not (all_ws_range st.src start stop) then begin
        let text =
          try unescape_range st.src start stop with Failure m -> fail st m
        in
        acc := Doc.make_text doc text :: !acc
      end
    end
  done;
  if not (eof st) then fail st "trailing content in fragment";
  List.rev !acc
