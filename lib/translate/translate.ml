module T = Xic_datalog.Term
module M = Xic_relmap.Mapping
module XP = Xic_xpath.Ast
module Q = Xic_xquery.Ast

exception Untranslatable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Untranslatable s)) fmt

let xop : T.cmp -> XP.binop = function
  | T.Eq -> XP.Eq
  | T.Neq -> XP.Neq
  | T.Lt -> XP.Lt
  | T.Le -> XP.Le
  | T.Gt -> XP.Gt
  | T.Ge -> XP.Ge

(* ------------------------------------------------------------------ *)
(* XPath expression helpers                                            *)
(* ------------------------------------------------------------------ *)

let child_step name = { XP.axis = XP.Child; test = XP.Name_test name; preds = [] }
let text_step = { XP.axis = XP.Child; test = XP.Text_test; preds = [] }
let attr_step name = { XP.axis = XP.Attribute; test = XP.Name_test name; preds = [] }
let parent_step = { XP.axis = XP.Parent; test = XP.Node_test; preds = [] }

(* Concatenate steps onto an expression, flattening nested paths. *)
let extend_path (e : XP.expr) steps =
  if steps = [] then e
  else
    match e with
    | XP.Path (start, st) -> XP.Path (start, st @ steps)
    | e -> XP.Path (XP.From e, steps)

let doc_any name = XP.Path (XP.Abs, [ XP.desc_step; child_step name ])

(* Column access below a node expression. *)
let column_path node (c : M.column) =
  match c.M.source with
  | M.From_pcdata_child ch -> extend_path node [ child_step ch; text_step ]
  | M.From_attr a -> extend_path node [ attr_step a ]
  | M.From_text -> extend_path node [ text_step ]

(* ------------------------------------------------------------------ *)
(* Occurrence counting over the denial                                 *)
(* ------------------------------------------------------------------ *)

let var_occurrences (d : T.denial) =
  let tbl = Hashtbl.create 16 in
  let bump v = Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)) in
  List.iter (fun l -> List.iter bump (T.lit_vars l)) d.T.body;
  fun v -> Option.value ~default:0 (Hashtbl.find_opt tbl v)

(* ------------------------------------------------------------------ *)
(* Translation state                                                   *)
(* ------------------------------------------------------------------ *)

type st = {
  mutable defined : (string * XP.expr) list;  (* Datalog var → reference *)
  mutable bindings : (string * Q.expr) list;  (* reversed *)
  mutable conds : Q.expr list;                (* reversed *)
}

let term_expr st (t : T.term) : XP.expr option =
  match t with
  | T.Const (T.Str s) -> Some (XP.Literal s)
  | T.Const (T.Int i) -> Some (XP.Number (float_of_int i))
  | T.Param p -> Some (XP.Var ("%" ^ p))
  | T.Var v -> List.assoc_opt v st.defined

let add_cond st (c : Q.expr) = st.conds <- c :: st.conds

let add_binding st v (e : XP.expr) =
  st.bindings <- (v, Q.Xp e) :: st.bindings;
  st.defined <- (v, XP.Var v) :: st.defined

let eq_cond a b = Q.Binop (XP.Eq, Q.Xp a, Q.Xp b)

(* ------------------------------------------------------------------ *)
(* Atom translation                                                    *)
(* ------------------------------------------------------------------ *)

let schema_exn mapping pred =
  match M.schema_of mapping pred with
  | Some s -> s
  | None -> fail "unknown predicate %s" pred

(* Translate pos/column arguments of an atom whose node expression is
   known.  [occurs] counts total occurrences of a variable in the denial:
   single-occurrence variables are existentially trivial and skipped. *)
let translate_columns st occurs mapping pred node_expr pos_term col_terms =
  let pos_expr () = XP.Call ("position-of", [ node_expr ]) in
  (match pos_term with
   | T.Var v when occurs v <= 1 -> ()
   | T.Var v ->
     (match List.assoc_opt v st.defined with
      | Some e -> add_cond st (eq_cond (pos_expr ()) e)
      | None -> add_binding st v (pos_expr ()))
   | t ->
     (match term_expr st t with
      | Some e -> add_cond st (eq_cond (pos_expr ()) e)
      | None -> fail "unresolved position term %s" (T.term_str t)));
  let schema = schema_exn mapping pred in
  if List.length col_terms <> List.length schema.M.columns then
    fail "arity mismatch for %s" pred;
  List.iter2
    (fun (c : M.column) t ->
      match t with
      | T.Var v when occurs v <= 1 -> ()
      | T.Var v ->
        (match List.assoc_opt v st.defined with
         | Some e -> add_cond st (eq_cond (column_path node_expr c) e)
         | None -> add_binding st v (column_path node_expr c))
      | t ->
        (match term_expr st t with
         | Some e -> add_cond st (eq_cond (column_path node_expr c) e)
         | None -> fail "unresolved column term %s" (T.term_str t)))
    schema.M.columns col_terms

let split_atom (a : T.atom) =
  match a.T.args with
  | id :: pos :: par :: cols -> (id, pos, par, cols)
  | _ -> fail "atom %s has arity < 3" (T.atom_str a)

(* The node expression for an atom's id term, creating a binding when
   needed.  Fresh node variables get a '$' binding named after the var. *)
let node_expr_for st occurs (a : T.atom) =
  let id, _, par, _ = split_atom a in
  match id with
  | T.Param p -> XP.Var ("%" ^ p)
  | T.Const _ -> fail "constant node id in %s" (T.atom_str a)
  | T.Var v ->
    (match List.assoc_opt v st.defined with
     | Some e -> e
     | None ->
       let source =
         match term_expr st par with
         | Some pe -> extend_path pe [ child_step a.T.pred ]
         | None -> doc_any a.T.pred
       in
       add_binding st v source;
       (* If the parent variable is needed elsewhere and not yet defined,
          expose it as $par in $id/.. *)
       (match par with
        | T.Var pv when occurs pv > 1 && List.assoc_opt pv st.defined = None ->
          add_binding st pv (extend_path (XP.Var v) [ parent_step ])
        | _ -> ());
       XP.Var v)

let translate_rel st occurs mapping (a : T.atom) =
  let _, pos, _, cols = split_atom a in
  let node = node_expr_for st occurs a in
  translate_columns st occurs mapping a.T.pred node pos cols

(* ------------------------------------------------------------------ *)
(* Negated atoms                                                       *)
(* ------------------------------------------------------------------ *)

(* Build a node-set expression selecting the tuples matching the atom
   under the current definitions: parent/cols become XPath predicates. *)
let atom_nodeset st occurs mapping (a : T.atom) =
  let id, pos, par, cols = split_atom a in
  (match id with
   | T.Var v when occurs v <= 1 -> ()
   | T.Param _ -> fail "negated atom with a parameter id is not supported"
   | _ -> fail "negated atom binds its id variable: %s" (T.atom_str a));
  let base =
    match term_expr st par with
    | Some pe -> extend_path pe [ child_step a.T.pred ]
    | None ->
      (match par with
       | T.Var v when occurs v <= 1 -> doc_any a.T.pred
       | _ -> fail "negated atom with an unresolved parent: %s" (T.atom_str a))
  in
  let preds = ref [] in
  (match pos with
   | T.Var v when occurs v <= 1 -> ()
   | t ->
     (match term_expr st t with
      | Some e ->
        preds := XP.Binop (XP.Eq, XP.Call ("position", []), e) :: !preds
      | None -> fail "negated atom with unresolved position"));
  let schema = schema_exn mapping a.T.pred in
  List.iter2
    (fun (c : M.column) t ->
      match t with
      | T.Var v when occurs v <= 1 -> ()
      | t ->
        (match term_expr st t with
         | Some e ->
           let access =
             match c.M.source with
             | M.From_pcdata_child ch -> XP.Path (XP.Rel, [ child_step ch; text_step ])
             | M.From_attr at -> XP.Path (XP.Rel, [ attr_step at ])
             | M.From_text -> XP.Path (XP.Rel, [ text_step ])
           in
           preds := XP.Binop (XP.Eq, access, e) :: !preds
         | None -> fail "negated atom with an unresolved column: %s" (T.atom_str a)))
    schema.M.columns cols;
  match (base, List.rev !preds) with
  | e, [] -> e
  | XP.Path (s, steps), preds ->
    (match List.rev steps with
     | last :: front ->
       XP.Path (s, List.rev ({ last with XP.preds = last.XP.preds @ preds } :: front))
     | [] -> assert false)
  | e, preds ->
    XP.Path (XP.From e, [ { XP.axis = XP.Self; test = XP.Node_test; preds } ])

let translate_not st occurs mapping (a : T.atom) =
  let ns = atom_nodeset st occurs mapping a in
  add_cond st (Q.Call ("not", [ Q.Call ("exists", [ Q.Xp ns ]) ]))

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

(* Attach extra predicates to the last step of a path. *)
let with_preds e ps =
  match (e, ps) with
  | e, [] -> e
  | XP.Path (s, steps), ps ->
    (match List.rev steps with
     | last :: front ->
       XP.Path (s, List.rev ({ last with XP.preds = last.XP.preds @ ps } :: front))
     | [] -> XP.Path (s, [ { XP.axis = XP.Self; test = XP.Node_test; preds = ps } ]))
  | e, ps -> XP.Path (XP.From e, [ { XP.axis = XP.Self; test = XP.Node_test; preds = ps } ])

(* Qualifier predicates expressing the constrained pos/column arguments of
   an aggregate atom; aggregate-local (undefined) variables are
   unconstrained. *)
let agg_atom_preds st occurs mapping (a : T.atom) =
  let _, pos, _, cols = split_atom a in
  let preds = ref [] in
  (match pos with
   | T.Var v when occurs v <= 1 || List.assoc_opt v st.defined = None -> ()
   | t ->
     (match term_expr st t with
      | Some e -> preds := XP.Binop (XP.Eq, XP.Call ("position", []), e) :: !preds
      | None -> ()));
  let schema = schema_exn mapping a.T.pred in
  List.iter2
    (fun (c : M.column) t ->
      let access () =
        match c.M.source with
        | M.From_pcdata_child ch -> XP.Path (XP.Rel, [ child_step ch; text_step ])
        | M.From_attr at -> XP.Path (XP.Rel, [ attr_step at ])
        | M.From_text -> XP.Path (XP.Rel, [ text_step ])
      in
      match t with
      | T.Var v ->
        (match List.assoc_opt v st.defined with
         | Some e -> preds := XP.Binop (XP.Eq, access (), e) :: !preds
         | None -> ())
      | t ->
        (match term_expr st t with
         | Some e -> preds := XP.Binop (XP.Eq, access (), e) :: !preds
         | None -> ()))
    schema.M.columns cols;
  List.rev !preds

(* Verify that atom i+1's parent variable is atom i's id variable. *)
let check_linear (g : T.agg) =
  let rec go = function
    | (a : T.atom) :: ((b : T.atom) :: _ as rest) ->
      let id, _, _, _ = split_atom a in
      let _, _, bpar, _ = split_atom b in
      (match id with
       | T.Var idv when bpar = T.Var idv -> go rest
       | _ ->
         fail "aggregate pattern is not a linear parent chain: %s"
           (T.lit_str (T.Agg g)))
    | _ -> ()
  in
  go g.T.atoms

(* Chain a list of aggregate atoms below a start expression. *)
let chain_atoms st occurs mapping start atoms =
  List.fold_left
    (fun e (a : T.atom) ->
      with_preds
        (extend_path e [ child_step a.T.pred ])
        (agg_atom_preds st occurs mapping a))
    start atoms

(* The aggregate's pattern as an XPath expression whose result nodes are
   the instances of the atom holding the target (atoms further down the
   chain become existence predicates on that step). *)
let agg_path st occurs mapping (g : T.agg) =
  check_linear g;
  (match g.T.atoms with
   | [] -> fail "empty aggregate pattern"
   | _ -> ());
  let first = List.hd g.T.atoms in
  let _, _, par, _ = split_atom first in
  let start =
    match term_expr st par with
    | Some pe -> pe
    | None ->
      (match par with
       | T.Var v when occurs v <= 1 -> XP.Path (XP.Abs, [ XP.desc_step ])
       | _ -> fail "aggregate parent %s is not resolved" (T.term_str par))
  in
  (* Index of the atom carrying the target (default: the last one). *)
  let target_idx =
    match g.T.target with
    | Some (T.Var tv) ->
      let rec find i = function
        | [] -> None
        | (a : T.atom) :: rest ->
          let id, _, _, _ = split_atom a in
          if id = T.Var tv then Some i else find (i + 1) rest
      in
      find 0 g.T.atoms
    | _ -> None
  in
  let k =
    match target_idx with Some k -> k | None -> List.length g.T.atoms - 1
  in
  let upto, after =
    let rec split i acc = function
      | rest when i > k -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | a :: rest -> split (i + 1) (a :: acc) rest
    in
    split 0 [] g.T.atoms
  in
  let main = chain_atoms st occurs mapping start upto in
  match after with
  | [] -> main
  | _ ->
    (* Trailing atoms become an existence predicate (a relative path). *)
    let tail =
      chain_atoms st occurs mapping (XP.Path (XP.Rel, [])) after
    in
    let tail =
      match tail with
      | XP.Path (XP.Rel, steps) -> XP.Path (XP.Rel, steps)
      | e -> e
    in
    with_preds main [ tail ]

(* Aggregate translation: a let-binding over the pattern path plus a
   count/sum condition. *)
let translate_agg st occurs mapping counter (g : T.agg) =
  let path = agg_path st occurs mapping g in
  incr counter;
  let v = Printf.sprintf "Agg%d" !counter in
  st.bindings <- (v, Q.Xp path) :: st.bindings;  (* becomes a let clause *)
  let target_expr =
    match g.T.target with
    | None -> Q.Xp (XP.Var v)
    | Some (T.Var tv) ->
      (* Target is one of the chain's node ids (then the pattern path ends
         at that atom and the result nodes are the targets) or a column of
         the last atom. *)
      let is_some_id =
        List.exists
          (fun (a : T.atom) ->
            let id, _, _, _ = split_atom a in
            id = T.Var tv)
          g.T.atoms
      in
      let last = List.nth g.T.atoms (List.length g.T.atoms - 1) in
      let _, _, _, cols = split_atom last in
      if is_some_id then Q.Xp (XP.Var v)
      else begin
        let schema = schema_exn mapping last.T.pred in
        let rec find cs ts =
          match (cs, ts) with
          | (c : M.column) :: cs', t :: ts' ->
            if t = T.Var tv then Some c else find cs' ts'
          | _ -> None
        in
        match find schema.M.columns cols with
        | Some c -> Q.Xp (column_path (XP.Var v) c)
        | None -> fail "aggregate target %s not found in the pattern" tv
      end
    | Some t ->
      (match term_expr st t with
       | Some e -> Q.Xp e
       | None -> fail "unresolved aggregate target %s" (T.term_str t))
  in
  let fn =
    match g.T.op with
    | T.Cnt -> "count"
    | T.CntD -> "count-distinct"
    | T.Sum -> "sum"
    | T.SumD -> "sum"  (* over distinct strings; adequate for our use *)
    | T.Max | T.Min -> fail "max/min aggregates are not translated to XQuery"
  in
  let bound =
    match term_expr st g.T.bound with
    | Some e -> Q.Xp e
    | None -> fail "unresolved aggregate bound %s" (T.term_str g.T.bound)
  in
  add_cond st (Q.Binop (xop g.T.acmp, Q.Call (fn, [ target_expr ]), bound));
  v

(* ------------------------------------------------------------------ *)
(* Atom ordering (parents before children)                             *)
(* ------------------------------------------------------------------ *)

let sort_lits (body : T.lit list) =
  let rels, others =
    List.partition (function T.Rel _ -> true | _ -> false) body
  in
  let id_of = function
    | T.Rel a -> (match a.T.args with T.Var v :: _ -> Some v | _ -> None)
    | _ -> None
  in
  let par_of = function
    | T.Rel a ->
      (match a.T.args with _ :: _ :: T.Var v :: _ -> Some v | _ -> None)
    | _ -> None
  in
  let rec order acc pending =
    if pending = [] then List.rev acc
    else begin
      let ready, waiting =
        List.partition
          (fun l ->
            match par_of l with
            | None -> true
            | Some pv ->
              not
                (List.exists
                   (fun l' -> l' != l && id_of l' = Some pv)
                   pending))
          pending
      in
      match ready with
      | [] -> List.rev_append acc pending  (* cycle: keep original order *)
      | _ -> order (List.rev_append ready acc) waiting
    end
  in
  order [] rels @ others

(* ------------------------------------------------------------------ *)
(* Single-use inlining                                                 *)
(* ------------------------------------------------------------------ *)

(* Count occurrences of the XPath variable [v] in a Q expression; uses
   under count/sum/not/exists calls or let-clauses are unsafe to inline
   into (they change cardinality), tracked separately. *)
let count_uses v (e : Q.expr) =
  let safe = ref 0 and unsafe = ref 0 in
  let rec xp depth = function
    | XP.Var x when x = v -> if depth = 0 then incr safe else incr unsafe
    | XP.Var _ | XP.Literal _ | XP.Number _ -> ()
    | XP.Neg e -> xp depth e
    | XP.Binop (_, a, b) -> xp depth a; xp depth b
    | XP.Call (f, args) ->
      let d = if List.mem f [ "count"; "count-distinct"; "sum"; "not"; "exists"; "empty" ] then depth + 1 else depth in
      List.iter (xp d) args
    | XP.Path (start, steps) ->
      (match start with XP.From e -> xp depth e | XP.Abs | XP.Rel -> ());
      List.iter (fun (s : XP.step) -> List.iter (xp depth) s.XP.preds) steps
  and q depth = function
    | Q.Xp e -> xp depth e
    | Q.Param _ -> ()
    | Q.Seq es | Q.Elem (_, es) -> List.iter (q depth) es
    | Q.Call (f, args) ->
      let d = if List.mem f [ "count"; "count-distinct"; "sum"; "not"; "exists"; "empty" ] then depth + 1 else depth in
      List.iter (q d) args
    | Q.Binop (_, a, b) -> q depth a; q depth b
    | Q.If (a, b, c) -> q depth a; q depth b; q depth c
    | Q.Quant (_, binds, cond) ->
      List.iter (fun (_, e) -> q depth e) binds;
      q depth cond
    | Q.Flwor (clauses, where, ret) ->
      List.iter
        (function
          | Q.For (_, e) -> q depth e
          | Q.Let (_, e) -> q (depth + 1) e)
        clauses;
      Option.iter (q depth) where;
      q depth ret
  in
  q 0 e;
  (!safe, !unsafe)

let rec xp_subst v (repl : XP.expr) (e : XP.expr) : XP.expr =
  match e with
  | XP.Var x when x = v -> repl
  | XP.Var _ | XP.Literal _ | XP.Number _ -> e
  | XP.Neg e -> XP.Neg (xp_subst v repl e)
  | XP.Binop (op, a, b) -> XP.Binop (op, xp_subst v repl a, xp_subst v repl b)
  | XP.Call (f, args) -> XP.Call (f, List.map (xp_subst v repl) args)
  | XP.Path (start, steps) ->
    let steps =
      List.map
        (fun (s : XP.step) -> { s with XP.preds = List.map (xp_subst v repl) s.XP.preds })
        steps
    in
    (match start with
     | XP.From (XP.Var x) when x = v -> extend_path repl steps
     | XP.From e -> XP.Path (XP.From (xp_subst v repl e), steps)
     | s -> XP.Path (s, steps))

let rec q_subst v repl (e : Q.expr) : Q.expr =
  match e with
  | Q.Xp x -> Q.Xp (xp_subst v repl x)
  | Q.Param _ -> e
  | Q.Seq es -> Q.Seq (List.map (q_subst v repl) es)
  | Q.Elem (t, es) -> Q.Elem (t, List.map (q_subst v repl) es)
  | Q.Call (f, args) -> Q.Call (f, List.map (q_subst v repl) args)
  | Q.Binop (op, a, b) -> Q.Binop (op, q_subst v repl a, q_subst v repl b)
  | Q.If (a, b, c) -> Q.If (q_subst v repl a, q_subst v repl b, q_subst v repl c)
  | Q.Quant (qk, binds, cond) ->
    Q.Quant (qk, List.map (fun (x, e) -> (x, q_subst v repl e)) binds, q_subst v repl cond)
  | Q.Flwor (clauses, where, ret) ->
    Q.Flwor
      ( List.map
          (function
            | Q.For (x, e) -> Q.For (x, q_subst v repl e)
            | Q.Let (x, e) -> Q.Let (x, q_subst v repl e))
          clauses,
        Option.map (q_subst v repl) where,
        q_subst v repl ret )

(* Inline bindings used exactly once in a safe position.  [protect] names
   variables that must keep their binding (aggregate lets). *)
let inline_bindings protect (bindings : (string * Q.expr) list) (cond : Q.expr) =
  let rec loop acc bindings cond =
    match bindings with
    | [] -> (List.rev acc, cond)
    | (v, e) :: rest ->
      let uses_rest =
        List.fold_left
          (fun (s, u) (w, e') ->
            let s', u' = count_uses v e' in
            (* A use inside a protected (aggregate let) binding changes
               grouping if inlined: count it as unsafe. *)
            if List.mem w protect then (s, u + s' + u') else (s + s', u + u'))
          (0, 0) rest
      in
      let s_c, u_c = count_uses v cond in
      let safe = fst uses_rest + s_c and unsafe = snd uses_rest + u_c in
      let repl = match e with Q.Xp x -> Some x | _ -> None in
      (match repl with
       | Some x when safe = 1 && unsafe = 0 && not (List.mem v protect) ->
         let rest = List.map (fun (w, e') -> (w, q_subst v x e')) rest in
         let cond = q_subst v x cond in
         loop acc rest cond
       | _ -> loop ((v, e) :: acc) rest cond)
  in
  loop [] bindings cond

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let conj = function
  | [] -> Q.Call ("true", [])
  | [ c ] -> c
  | c :: cs -> List.fold_left (fun a b -> Q.Binop (XP.And, a, b)) c cs

let denial mapping (d : T.denial) : Q.expr =
  (match T.denial_vars d with _ -> ());
  let occurs = var_occurrences d in
  let st = { defined = []; bindings = []; conds = [] } in
  let counter = ref 0 in
  let aggs = ref [] in
  (* Terms denoting nodes (atom ids and parents): comparisons between two
     of them are node-identity tests, not string comparisons. *)
  let node_terms = Hashtbl.create 8 in
  List.iter
    (function
      | T.Rel a | T.Not a ->
        (match a.T.args with
         | id :: _ :: par :: _ ->
           Hashtbl.replace node_terms id ();
           Hashtbl.replace node_terms par ()
         | _ -> ())
      | _ -> ())
    d.T.body;
  let is_node_term t = Hashtbl.mem node_terms t in
  List.iter
    (fun l ->
      match l with
      | T.Rel a -> translate_rel st occurs mapping a
      | T.Not a -> translate_not st occurs mapping a
      | T.Cmp (op, t1, t2) ->
        (match (term_expr st t1, term_expr st t2) with
         | Some e1, Some e2 ->
           if (op = T.Eq || op = T.Neq) && is_node_term t1 && is_node_term t2
           then begin
             let same = Q.Call ("same-node", [ Q.Xp e1; Q.Xp e2 ]) in
             add_cond st (if op = T.Eq then same else Q.Call ("not", [ same ]))
           end
           else add_cond st (Q.Binop (xop op, Q.Xp e1, Q.Xp e2))
         | _ ->
           fail "comparison %s has unresolved operands (unsafe denial)"
             (T.lit_str l))
      | T.Agg g -> aggs := translate_agg st occurs mapping counter g :: !aggs)
    (sort_lits d.T.body);
  let bindings = List.rev st.bindings in
  let cond = conj (List.rev st.conds) in
  let bindings, cond = inline_bindings !aggs bindings cond in
  if !aggs = [] then begin
    match bindings with
    | [] -> cond
    | _ -> Q.Quant (Q.Some_, bindings, cond)
  end
  else begin
    let clauses =
      List.map
        (fun (v, e) ->
          if List.mem v !aggs then Q.Let (v, e) else Q.For (v, e))
        bindings
    in
    let where = match cond with Q.Call ("true", []) -> None | c -> Some c in
    Q.Call ("exists", [ Q.Flwor (clauses, where, Q.Elem ("idle", [])) ])
  end

let denials mapping ds =
  Xic_obs.Obs.Trace.with_span "translate"
    ~attrs:[ ("denials", string_of_int (List.length ds)) ]
    (fun () ->
      match List.map (denial mapping) ds with
      | [] -> Q.Call ("false", [])
      | [ e ] -> e
      | e :: es -> List.fold_left (fun a b -> Q.Binop (XP.Or, a, b)) e es)
