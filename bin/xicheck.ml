(* xicheck — command-line front end for the XML integrity checker.

   Subcommands:
     schema     derive and print the relational mapping of a set of DTDs
     compile    compile XPathLog constraints to Datalog and XQuery
     validate   validate documents against their DTDs
     check      evaluate constraints against documents
     simplify   simplify constraints w.r.t. an update pattern
     guard      run an XUpdate statement under integrity control
     txn        run several statements as one journaled transaction
     recover    replay a write-ahead journal after a crash
     generate   emit a synthetic conference dataset

   DTDs are given as FILE=ROOT pairs; constraints as files of XPathLog
   denials (one per line, optionally labelled "name: <- …"); update
   patterns as XUpdate statement templates whose text values may be
   %name parameters. *)

open Cmdliner
open Xic_core
module Obs = Xic_obs.Obs
module XLog = Xic_obs.Log

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("xicheck: " ^ s); exit 1) fmt

(* All CLI outputs go through the shared atomic-write path: temp file,
   fsync, rename, parent-directory fsync — a crash mid-write never
   leaves a half-written output, and the rename itself is durable. *)
let write_file path contents =
  match Xic_journal.Atomic_file.replace path (contents ^ "\n") with
  | () -> Printf.printf "wrote %s\n" path
  | exception Xic_journal.Atomic_file.Atomic_file_error m ->
    die "cannot write %s: %s" path m

(* Dump the collection, one file per root. *)
let write_roots repo prefix =
  let doc = Repository.doc repo in
  List.iteri
    (fun i root ->
      write_file
        (Printf.sprintf "%s.%d.xml" prefix i)
        (Xic_xml.Xml_printer.node_to_string ~indent:true doc root))
    (Xic_xml.Doc.roots doc)

let open_journal path =
  match Xic_journal.Journal.open_ path with
  | j -> j
  | exception Xic_journal.Journal.Journal_error m -> die "%s" m

let print_degradations report =
  List.iter
    (fun (d : Repository.degradation) ->
      Printf.printf "note: optimized check %s degraded (%s)\n"
        d.Repository.failed_check d.Repository.reason)
    report.Repository.degradations

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let dtd_arg =
  let doc = "DTD file and its root element, as FILE=ROOT.  Repeatable." in
  Arg.(non_empty & opt_all string [] & info [ "dtd" ] ~docv:"FILE=ROOT" ~doc)

let docs_arg =
  let doc = "XML document file.  Repeatable." in
  Arg.(value & opt_all file [] & info [ "doc" ] ~docv:"FILE" ~doc)

let constraints_arg =
  let doc = "File of XPathLog denials (one per line; 'name: <- …')." in
  Arg.(value & opt (some file) None & info [ "constraints" ] ~docv:"FILE" ~doc)

let pattern_arg =
  let doc =
    "XUpdate statement template whose text values may be %name parameters; \
     used as the update pattern."
  in
  Arg.(value & opt (some file) None & info [ "pattern" ] ~docv:"FILE" ~doc)

let no_validate_arg =
  let doc = "Skip DTD validation when loading documents." in
  Arg.(value & flag & info [ "no-validate" ] ~doc)

let legacy_loader_arg =
  let doc =
    "Load documents with the legacy two-pass path (parse, then shred on \
     demand) instead of the fused single-pass loader.  Escape hatch; \
     verdicts are identical either way."
  in
  Arg.(value & flag & info [ "legacy-loader" ] ~doc)

let no_index_arg =
  let doc =
    "Disable indexed evaluation: answer every check with the scanning \
     interpreter (verdicts are identical either way)."
  in
  Arg.(value & flag & info [ "no-index" ] ~doc)

let index_stats_arg =
  let doc = "Print index cache statistics (hits, misses, fallbacks) at exit." in
  Arg.(value & flag & info [ "index-stats" ] ~doc)

let jobs_arg =
  let doc =
    "Evaluate independent constraint checks on up to $(docv) domains \
     (clamped to the machine's core count; verdicts are identical)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let plan_stats_arg =
  let doc = "Print plan-cache statistics (hits, misses, cached plans) at exit." in
  Arg.(value & flag & info [ "plan-stats" ] ~doc)

let incremental_arg =
  let doc =
    "Maintain materialized denial views from fact deltas and route \
     verdicts through them (semi-naive incremental checking): the cost \
     of a check follows the size of the update, not the document.  \
     Verdicts are identical to the full re-evaluation."
  in
  Arg.(value & flag & info [ "incremental" ] ~doc)

let no_incremental_arg =
  let doc = "Force full re-evaluation (the default)." in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let delta_stats_arg =
  let doc =
    "Print the delta maintenance report (mirror flushes, net facts, \
     view evaluations) at exit."
  in
  Arg.(value & flag & info [ "delta-stats" ] ~doc)

let apply_incremental repo ~incremental ~no_incremental =
  if incremental && no_incremental then
    die "--incremental and --no-incremental are mutually exclusive";
  if incremental then Repository.set_incremental repo true

let print_delta_stats repo ~delta_stats =
  if delta_stats then print_endline (Repository.delta_stats_line repo)

let trace_arg =
  let doc =
    "Trace every pipeline stage (parse, shred, simplify, translate, plan \
     compilation, evaluation) and write the spans to $(docv) as Chrome \
     trace_event JSON — or, when $(docv) is '-', as an indented text tree \
     to stderr."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the metrics registry (pipeline counters and latency histograms) \
     as JSON at exit."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let slow_ms_arg =
  let doc =
    "Record every constraint check slower than $(docv) milliseconds in the \
     slow-check log, printed to stderr at exit (implies tracing)."
  in
  Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)

(* Enable the requested instrumentation.  Must run before any document
   loads so the parse span is captured. *)
let obs_setup ~trace ~metrics ~slow_ms =
  if metrics || trace <> None || slow_ms <> None then
    Obs.Metrics.set_detailed true;
  if trace <> None || slow_ms <> None then Obs.Trace.set_enabled true;
  Option.iter (fun ms -> Obs.set_slow_threshold_ms (Some ms)) slow_ms

let print_slow_log () =
  match Obs.Trace.slow_log () with
  | [] -> ()
  | slow ->
    prerr_endline "slow checks:";
    List.iter
      (fun (sp : Obs.Trace.span) ->
        Printf.eprintf "  %s %.3fms\n" sp.Obs.Trace.name
          (Obs.Trace.duration_ms sp))
      slow

(* Write the collected trace; runs after the command body, before any
   exit-code decision, so failing checks still produce their trace. *)
let obs_finish ~trace ~slow_ms =
  (match trace with
   | None -> ()
   | Some "-" -> prerr_string (Obs.Trace.to_text (Obs.Trace.roots ()))
   | Some path ->
     let oc =
       match open_out path with
       | oc -> oc
       | exception Sys_error m -> die "cannot write %s: %s" path m
     in
     output_string oc (Obs.Trace.to_chrome_json (Obs.Trace.roots ()));
     output_char oc '\n';
     close_out oc;
     Printf.printf "wrote trace %s\n" path);
  if slow_ms <> None then print_slow_log ()

(* The stats flags compose into one JSON object; a single legacy flag
   keeps its historical one-line output (cram-tested). *)
let print_stats repo ~plan_stats ~index_stats ~metrics =
  let n =
    (if plan_stats then 1 else 0)
    + (if index_stats then 1 else 0)
    + if metrics then 1 else 0
  in
  if n = 0 then ()
  else if n = 1 && plan_stats then
    print_endline (Repository.plan_stats_line repo)
  else if n = 1 && index_stats then
    print_endline (Repository.index_stats_line repo)
  else if n = 1 then print_endline (Repository.metrics_json repo)
  else begin
    let parts = ref [] in
    if metrics then
      parts :=
        Printf.sprintf "\"metrics\":%s" (Repository.metrics_json repo)
        :: !parts;
    if index_stats then begin
      let h, m, f, e =
        match Repository.index_stats repo with
        | Some s ->
          Xic_xml.Index.(s.hits, s.misses, s.fallbacks, s.events)
        | None -> (0, 0, 0, 0)
      in
      parts :=
        Printf.sprintf
          "\"index_stats\":{\"hits\":%d,\"misses\":%d,\"fallbacks\":%d,\"events\":%d}"
          h m f e
        :: !parts
    end;
    if plan_stats then begin
      let ps = Repository.plan_stats repo in
      parts :=
        Printf.sprintf
          "\"plan_stats\":{\"hits\":%d,\"misses\":%d,\"cached\":%d}"
          ps.Repository.plan_hits ps.Repository.plan_misses
          (Repository.cached_plans repo)
        :: !parts
    end;
    print_endline ("{" ^ String.concat "," !parts ^ "}")
  end

let load_schema specs =
  let parse spec =
    match String.index_opt spec '=' with
    | Some i ->
      let file = String.sub spec 0 i in
      let root = String.sub spec (i + 1) (String.length spec - i - 1) in
      (read_file file, root)
    | None -> die "bad --dtd %S (expected FILE=ROOT)" spec
  in
  match Schema.create (List.map parse specs) with
  | s -> s
  | exception Schema.Schema_error m -> die "%s" m
  | exception Sys_error m -> die "%s" m

let load_repo ?(legacy = false) ~validate schema docs =
  let repo = Repository.create schema in
  let load =
    if legacy then Repository.load_document else Repository.load_fused
  in
  List.iter
    (fun path ->
      match load ~validate repo (read_file path) with
      | () -> ()
      | exception Repository.Repository_error m -> die "%s: %s" path m)
    docs;
  repo

let snapshot_arg =
  let doc =
    "Load the document collection and its relational store from this \
     snapshot checkpoint (see 'xicheck checkpoint') instead of parsing \
     --doc XML.  With --journal, the journal's committed suffix (entries \
     newer than the checkpoint) is replayed on top."
  in
  Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)

let load_snapshot_repo s path =
  let repo = Repository.create s in
  match Repository.load_snapshot repo path with
  | meta -> (repo, meta)
  | exception Xic_snapshot.Snapshot.Snapshot_error (p, e) ->
    die "snapshot %s: %s" p (Xic_snapshot.Snapshot.error_message e)
  | exception Repository.Repository_error m -> die "%s" m

(* Build the repository state either from XML documents or from a
   snapshot checkpoint; returns the snapshot metadata when one was
   loaded (needed to compute the journal replay skip). *)
let load_state ?legacy ~validate s ~snapshot docs =
  match snapshot with
  | None -> (load_repo ?legacy ~validate s docs, None)
  | Some path ->
    if docs <> [] then die "--snapshot and --doc are mutually exclusive";
    let repo, meta = load_snapshot_repo s path in
    (repo, Some meta)

(* Bring a snapshot-loaded repository up to date with the journal's
   committed suffix (entries past the snapshot's watermark).  Constraints
   must already be registered so replayed statements are re-checkable. *)
let replay_onto_snapshot repo meta jpath =
  if Sys.file_exists jpath then begin
    let rr =
      match Xic_journal.Journal.read jpath with
      | rr -> rr
      | exception Xic_journal.Journal.Journal_error m -> die "%s" m
    in
    let skip = Repository.recover_skip meta rr in
    let r = Repository.recover ~skip rr repo in
    List.iter
      (fun (txn, m) -> die "replay error in journaled transaction %d: %s" txn m)
      r.Repository.replay_errors
  end

let load_constraints schema = function
  | None -> []
  | Some path ->
    read_file path |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || (String.length line >= 2 && String.sub line 0 2 = "--")
           then None
           else Some line)
    |> List.mapi (fun i line ->
           let name, src =
             match String.index_opt line ':' with
             | Some j
               when j + 1 < String.length line
                    && line.[j + 1] <> '-'
                    && String.for_all
                         (fun c ->
                           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                           || (c >= '0' && c <= '9') || c = '_')
                         (String.sub line 0 j) ->
               (String.sub line 0 j, String.sub line (j + 1) (String.length line - j - 1))
             | _ -> (Printf.sprintf "c%d" (i + 1), line)
           in
           match Constr.make schema ~name src with
           | c -> c
           | exception Constr.Constraint_error m -> die "%s" m)

let load_pattern schema = function
  | None -> None
  | Some path ->
    (match Xic_xupdate.Xupdate.parse_string (read_file path) with
     | [ m ] ->
       (match Pattern.of_modification schema ~name:"pattern" m with
        | p -> Some p
        | exception Pattern.Pattern_error e -> die "%s" e)
     | _ -> die "%s: the pattern template must contain one modification" path
     | exception Xic_xupdate.Xupdate.Xupdate_error m -> die "%s: %s" path m)

(* ------------------------------------------------------------------ *)
(* schema                                                              *)
(* ------------------------------------------------------------------ *)

let schema_cmd =
  let run dtds =
    let s = load_schema dtds in
    print_endline (Schema.to_string s)
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the relational mapping derived from the DTDs")
    Term.(const run $ dtd_arg)

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let run dtds constraints =
    let s = load_schema dtds in
    List.iter
      (fun (c : Constr.t) ->
        Printf.printf "-- %s\n%s\n" c.Constr.name c.Constr.source;
        Printf.printf "datalog:\n%s\n"
          (Xic_datalog.Term.denials_str c.Constr.datalog);
        Printf.printf "xquery:\n%s\n\n" (Xic_xquery.Ast.to_string c.Constr.xquery))
      (load_constraints s constraints)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile XPathLog constraints to Datalog denials and XQuery checks")
    Term.(const run $ dtd_arg $ constraints_arg)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let run dtds docs =
    let s = load_schema dtds in
    let repo = Repository.create s in
    let ok = ref true in
    List.iter
      (fun path ->
        match Repository.load_document ~validate:true repo (read_file path) with
        | () -> Printf.printf "%s: valid\n" path
        | exception Repository.Repository_error m ->
          ok := false;
          Printf.printf "%s: INVALID (%s)\n" path m)
      docs;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate documents against their DTDs")
    Term.(const run $ dtd_arg $ docs_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

(* Spans named [name] anywhere in the forest, in completion order. *)
let spans_named name roots =
  let rec go acc (sp : Obs.Trace.span) =
    let acc = if sp.Obs.Trace.name = name then sp :: acc else acc in
    List.fold_left go acc (List.rev sp.Obs.Trace.children)
  in
  List.rev (List.fold_left go [] roots)

(* The --explain report: each constraint's compiled plan (probe choices,
   join strategy, conjunct schedule) plus the timings and eval-step
   cardinalities observed on the traced run just performed. *)
let print_plans repo roots =
  List.iter
    (fun (c : Constr.t) ->
      Printf.printf "\n== plan %s\n" c.Constr.name;
      print_string (Xic_xquery.Eval.describe c.Constr.xquery);
      match spans_named ("check:" ^ c.Constr.name) roots with
      | [] -> ()
      | sps ->
        let total =
          List.fold_left (fun a sp -> a +. Obs.Trace.duration_ms sp) 0.0 sps
        in
        let steps =
          List.fold_left
            (fun a (sp : Obs.Trace.span) ->
              List.fold_left
                (fun a (ch : Obs.Trace.span) ->
                  if ch.Obs.Trace.name <> "eval" then a
                  else
                    match List.assoc_opt "steps" ch.Obs.Trace.attrs with
                    | Some s -> a + int_of_string s
                    | None -> a)
                a sp.Obs.Trace.children)
            0 sps
        in
        Printf.printf "observed: %d run(s), %.3f ms, %d eval steps\n"
          (List.length sps) total steps)
    (Repository.constraints repo)

let check_cmd =
  let datalog_arg =
    let doc = "Evaluate over the relational mirror instead of XQuery." in
    Arg.(value & flag & info [ "datalog" ] ~doc)
  in
  let explain_arg =
    let doc =
      "Print a violation witness (bindings and node paths) per violated \
       constraint, then each constraint's compiled plan with the timings \
       observed on a traced run."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run dtds docs snapshot constraints pattern no_validate legacy_loader
      use_datalog explain no_index index_stats jobs plan_stats incremental
      no_incremental delta_stats trace metrics slow_ms =
    obs_setup ~trace ~metrics ~slow_ms;
    (* --explain needs a traced run for its observed timings *)
    if explain then begin
      Obs.Trace.set_enabled true;
      Obs.Metrics.set_detailed true
    end;
    let s = load_schema dtds in
    let repo, _meta =
      load_state ~legacy:legacy_loader ~validate:(not no_validate) s ~snapshot
        docs
    in
    if no_index then Repository.set_use_index repo false;
    (if jobs < 1 then die "--jobs must be at least 1"
     else Repository.set_parallelism repo jobs);
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    (match load_pattern s pattern with
     | Some p -> Repository.register_pattern repo p
     | None -> ());
    apply_incremental repo ~incremental ~no_incremental;
    let consistent =
      if explain then begin
        match Repository.explain repo with
        | [] ->
          print_endline "consistent";
          true
        | ws ->
          List.iter (fun w -> print_endline (Repository.witness_to_string w)) ws;
          false
      end
      else begin
        let violated =
          if incremental then Repository.check_incremental repo
          else if use_datalog then Repository.check_full_datalog repo
          else Repository.check_full repo
        in
        match violated with
        | [] ->
          print_endline "consistent";
          true
        | vs ->
          List.iter (Printf.printf "VIOLATED: %s\n") vs;
          false
      end
    in
    if explain then begin
      ignore (Repository.check_full repo : string list);
      print_plans repo (Obs.Trace.roots ());
      if slow_ms = None then print_slow_log ()
    end;
    print_stats repo ~plan_stats ~index_stats ~metrics;
    print_delta_stats repo ~delta_stats;
    obs_finish ~trace ~slow_ms;
    if not consistent then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check integrity constraints against the documents")
    Term.(
      const run $ dtd_arg $ docs_arg $ snapshot_arg $ constraints_arg
      $ pattern_arg $ no_validate_arg $ legacy_loader_arg $ datalog_arg
      $ explain_arg $ no_index_arg $ index_stats_arg $ jobs_arg
      $ plan_stats_arg $ incremental_arg $ no_incremental_arg
      $ delta_stats_arg $ trace_arg $ metrics_arg $ slow_ms_arg)

(* ------------------------------------------------------------------ *)
(* simplify                                                            *)
(* ------------------------------------------------------------------ *)

let simplify_cmd =
  let run dtds constraints pattern =
    let s = load_schema dtds in
    let pattern =
      match load_pattern s pattern with
      | Some p -> p
      | None -> die "simplify requires --pattern"
    in
    Printf.printf "-- update pattern U = { %s }\n"
      (String.concat ", " (List.map Xic_datalog.Term.atom_str pattern.Pattern.atoms));
    Printf.printf "-- freshness hypotheses:\n%s\n\n"
      (Xic_datalog.Term.denials_str (Pattern.hypotheses s pattern));
    List.iter
      (fun (c : Constr.t) ->
        let simplified = Pattern.simplify s pattern c in
        Printf.printf "-- %s\n" c.Constr.name;
        (match simplified with
         | [] -> print_endline "(nothing to check for this pattern)"
         | ds ->
           print_endline (Xic_datalog.Term.denials_str ds);
           Printf.printf "xquery: %s\n"
             (Xic_xquery.Ast.to_string
                (Xic_translate.Translate.denials (Schema.mapping s) ds)));
        print_newline ())
      (load_constraints s constraints)
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:"Simplify constraints w.r.t. an update pattern (Simp of Section 5)")
    Term.(const run $ dtd_arg $ constraints_arg $ pattern_arg)

(* ------------------------------------------------------------------ *)
(* guard                                                               *)
(* ------------------------------------------------------------------ *)

let output_arg =
  let doc = "Write the resulting collection to this file prefix (one file per root)." in
  Arg.(value & opt (some string) None & info [ "output" ] ~docv:"PREFIX" ~doc)

let journal_arg =
  let doc =
    "Write-ahead journal file: every statement is journaled before it \
     executes, so 'xicheck recover' can replay committed work after a crash."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let eval_budget_arg =
  let doc =
    "Step budget per optimized check; a check exhausting it degrades to \
     the full check instead of hanging."
  in
  Arg.(value & opt (some int) None & info [ "eval-budget" ] ~docv:"STEPS" ~doc)

let runtime_simp_arg =
  let doc =
    "For updates matching no pattern, derive a one-off pattern and \
     simplify at runtime instead of execute-check-compensate."
  in
  Arg.(value & flag & info [ "runtime-simp" ] ~doc)

let parse_update path =
  match Xic_xupdate.Xupdate.parse_string (read_file path) with
  | u -> u
  | exception Xic_xupdate.Xupdate.Xupdate_error m -> die "%s: %s" path m

let print_outcome = function
  | Repository.Applied `Optimized ->
    print_endline "applied (validated by the optimized pre-check)"
  | Repository.Applied `Runtime_simplified ->
    print_endline "applied (validated by a runtime-simplified pre-check)"
  | Repository.Applied `Full_check ->
    print_endline "applied (validated by the full check)"
  | Repository.Rejected_early c ->
    Printf.printf "rejected before execution: violates %s\n" c
  | Repository.Rolled_back c -> Printf.printf "rolled back: violates %s\n" c

let guard_cmd =
  let update_arg =
    let doc = "XUpdate statement to execute under integrity control." in
    Arg.(required & opt (some file) None & info [ "update" ] ~docv:"FILE" ~doc)
  in
  let run dtds docs snapshot constraints pattern no_validate legacy_loader
      runtime_simp update output journal eval_budget no_index index_stats
      incremental no_incremental delta_stats trace metrics slow_ms =
    obs_setup ~trace ~metrics ~slow_ms;
    let s = load_schema dtds in
    let repo, meta =
      load_state ~legacy:legacy_loader ~validate:(not no_validate) s ~snapshot
        docs
    in
    if no_index then Repository.set_use_index repo false;
    Repository.set_eval_budget repo eval_budget;
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    (match load_pattern s pattern with
     | Some p -> Repository.register_pattern repo p
     | None -> ());
    apply_incremental repo ~incremental ~no_incremental;
    (match (meta, journal) with
     | Some m, Some jpath -> replay_onto_snapshot repo m jpath
     | _ -> ());
    let u = parse_update update in
    let fallback =
      if runtime_simp then `Runtime_simplification else `Full_check
    in
    let journal = Option.map open_journal journal in
    let report = Repository.guarded_update_report ~fallback ?journal repo u in
    Option.iter Xic_journal.Journal.close journal;
    print_degradations report;
    print_outcome report.Repository.outcome;
    print_stats repo ~plan_stats:false ~index_stats ~metrics;
    print_delta_stats repo ~delta_stats;
    obs_finish ~trace ~slow_ms;
    (match report.Repository.outcome with
     | Repository.Applied _ -> ()
     | Repository.Rejected_early _ | Repository.Rolled_back _ -> exit 1);
    Option.iter (write_roots repo) output
  in
  Cmd.v
    (Cmd.info "guard"
       ~doc:"Execute an XUpdate statement under integrity control")
    Term.(
      const run $ dtd_arg $ docs_arg $ snapshot_arg $ constraints_arg
      $ pattern_arg $ no_validate_arg $ legacy_loader_arg $ runtime_simp_arg
      $ update_arg $ output_arg $ journal_arg $ eval_budget_arg $ no_index_arg
      $ index_stats_arg $ incremental_arg $ no_incremental_arg
      $ delta_stats_arg $ trace_arg $ metrics_arg $ slow_ms_arg)

(* ------------------------------------------------------------------ *)
(* txn                                                                 *)
(* ------------------------------------------------------------------ *)

let txn_cmd =
  let updates_arg =
    let doc =
      "XUpdate statement file; applied in order as one transaction.  \
       Repeatable."
    in
    Arg.(non_empty & opt_all file [] & info [ "update" ] ~docv:"FILE" ~doc)
  in
  let abort_arg =
    let doc = "Roll the transaction back at the end instead of committing." in
    Arg.(value & flag & info [ "abort" ] ~doc)
  in
  let run dtds docs snapshot constraints pattern no_validate legacy_loader
      runtime_simp updates output journal eval_budget abort no_index
      index_stats incremental no_incremental delta_stats trace metrics slow_ms =
    obs_setup ~trace ~metrics ~slow_ms;
    let s = load_schema dtds in
    let repo, meta =
      load_state ~legacy:legacy_loader ~validate:(not no_validate) s ~snapshot
        docs
    in
    if no_index then Repository.set_use_index repo false;
    Repository.set_eval_budget repo eval_budget;
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    (match load_pattern s pattern with
     | Some p -> Repository.register_pattern repo p
     | None -> ());
    apply_incremental repo ~incremental ~no_incremental;
    (match (meta, journal) with
     | Some m, Some jpath -> replay_onto_snapshot repo m jpath
     | _ -> ());
    let fallback =
      if runtime_simp then `Runtime_simplification else `Full_check
    in
    let journal = Option.map open_journal journal in
    let tx = Repository.begin_txn ?journal repo in
    let refused = ref 0 in
    List.iteri
      (fun i path ->
        let report = Repository.txn_apply_report ~fallback tx (parse_update path) in
        print_degradations report;
        Printf.printf "statement %d (%s): " (i + 1) path;
        print_outcome report.Repository.outcome;
        match report.Repository.outcome with
        | Repository.Applied _ -> ()
        | Repository.Rejected_early _ | Repository.Rolled_back _ -> incr refused)
      updates;
    if abort then begin
      Repository.rollback_txn tx;
      print_endline "transaction rolled back"
    end
    else begin
      Repository.commit_txn tx;
      Printf.printf "transaction committed (%d statements)\n"
        (Repository.txn_statements tx)
    end;
    Option.iter Xic_journal.Journal.close journal;
    print_stats repo ~plan_stats:false ~index_stats ~metrics;
    print_delta_stats repo ~delta_stats;
    obs_finish ~trace ~slow_ms;
    Option.iter (write_roots repo) output;
    if !refused > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "txn"
       ~doc:
         "Apply several XUpdate statements as one journaled transaction \
          (each statement still guarded individually)")
    Term.(
      const run $ dtd_arg $ docs_arg $ snapshot_arg $ constraints_arg
      $ pattern_arg $ no_validate_arg $ legacy_loader_arg $ runtime_simp_arg
      $ updates_arg $ output_arg $ journal_arg $ eval_budget_arg $ abort_arg
      $ no_index_arg $ index_stats_arg $ incremental_arg $ no_incremental_arg
      $ delta_stats_arg $ trace_arg $ metrics_arg $ slow_ms_arg)

(* ------------------------------------------------------------------ *)
(* recover                                                             *)
(* ------------------------------------------------------------------ *)

(* recover's exit codes form a taxonomy the torture harness (and any
   supervisor) can branch on:
     0  journal replayed cleanly (a torn *tail* is expected after a
        crash mid-append and still recovers the committed prefix)
     1  replay errors or post-replay violations
     3  the journal file does not exist
     4  a full-length record in the *middle* of the journal failed its
        checksum: silent corruption, not a crash artifact; the valid
        prefix was still replayed *)
let recover_cmd =
  let journal_arg =
    let doc = "Journal file to recover from." in
    Arg.(
      required & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let run dtds docs snapshot constraints no_validate legacy_loader journal
      incremental no_incremental delta_stats output =
    let s = load_schema dtds in
    let repo, meta =
      load_state ~legacy:legacy_loader ~validate:(not no_validate) s ~snapshot
        docs
    in
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    apply_incremental repo ~incremental ~no_incremental;
    if not (Sys.file_exists journal) then begin
      Printf.eprintf "xicheck: journal %s not found\n" journal;
      exit 3
    end;
    let rr =
      match Xic_journal.Journal.read journal with
      | rr -> rr
      | exception Xic_journal.Journal.Journal_error m -> die "%s" m
    in
    let module J = Xic_journal.Journal in
    (match rr.J.tail with
     | J.Clean -> ()
     | J.Torn _ ->
       print_endline "discarded a torn record at the end of the journal"
     | J.Corrupt { dropped } ->
       Printf.printf
         "checksum mismatch inside the journal: discarded %d byte(s) from \
          the first corrupt record onward\n"
         dropped);
    let skip =
      match meta with Some m -> Repository.recover_skip m rr | None -> 0
    in
    let r = Repository.recover ~skip rr repo in
    Printf.printf "replayed %d transaction(s), %d statement(s); discarded %d\n"
      r.Repository.replayed_txns r.Repository.replayed_statements
      r.Repository.discarded_txns;
    List.iter
      (fun (txn, m) -> Printf.printf "REPLAY ERROR in transaction %d: %s\n" txn m)
      r.Repository.replay_errors;
    List.iter (Printf.printf "VIOLATED after replay: %s\n") r.Repository.post_violations;
    print_delta_stats repo ~delta_stats;
    Option.iter (write_roots repo) output;
    if r.Repository.replay_errors <> [] || r.Repository.post_violations <> [] then
      exit 1;
    match rr.J.tail with J.Corrupt _ -> exit 4 | J.Clean | J.Torn _ -> ()
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Replay the committed transactions of a write-ahead journal \
          against freshly loaded base documents (or a snapshot)")
    Term.(
      const run $ dtd_arg $ docs_arg $ snapshot_arg $ constraints_arg
      $ no_validate_arg $ legacy_loader_arg $ journal_arg $ incremental_arg
      $ no_incremental_arg $ delta_stats_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let checkpoint_cmd =
  let snapshot_out_arg =
    let doc =
      "Snapshot file to write.  If it already exists it is loaded first \
       (so checkpointing is incremental: old snapshot + journal suffix -> \
       new snapshot) and --doc is not allowed."
    in
    Arg.(
      required & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let journal_arg =
    let doc =
      "Write-ahead journal to fold into the snapshot.  Its committed \
       suffix is replayed before the snapshot is written, and on success \
       the journal is reset to a fresh generation."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let run dtds docs constraints no_validate legacy_loader journal snapshot =
    let s = load_schema dtds in
    let repo, meta =
      if Sys.file_exists snapshot then begin
        if docs <> [] then
          die "--doc is not allowed when %s already exists (the snapshot is \
               the document source)"
            snapshot;
        let repo, meta = load_snapshot_repo s snapshot in
        (repo, Some meta)
      end
      else
        (load_repo ~legacy:legacy_loader ~validate:(not no_validate) s docs,
         None)
    in
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    (match (meta, journal) with
     | Some m, Some jpath -> replay_onto_snapshot repo m jpath
     | None, Some jpath when Sys.file_exists jpath ->
       (* fresh documents: every committed journal entry is news *)
       let rr =
         match Xic_journal.Journal.read jpath with
         | rr -> rr
         | exception Xic_journal.Journal.Journal_error m -> die "%s" m
       in
       let r = Repository.recover rr repo in
       List.iter
         (fun (txn, m) ->
           die "replay error in journaled transaction %d: %s" txn m)
         r.Repository.replay_errors
     | _ -> ());
    let journal = Option.map open_journal journal in
    let report =
      match Repository.checkpoint ?journal repo snapshot with
      | report -> report
      | exception Repository.Repository_error m -> die "%s" m
    in
    Option.iter Xic_journal.Journal.close journal;
    Printf.printf "checkpointed %d node(s), %d fact(s) to %s (%d bytes)\n"
      report.Repository.snapshot_nodes report.Repository.snapshot_facts
      report.Repository.snapshot_path report.Repository.snapshot_bytes;
    if report.Repository.wal_reset then
      Printf.printf "journal reset after folding %d entries\n"
        report.Repository.wal_entries_folded
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Write a crash-consistent snapshot of the repository state and \
          truncate the write-ahead journal")
    Term.(
      const run $ dtd_arg $ docs_arg $ constraints_arg $ no_validate_arg
      $ legacy_loader_arg $ journal_arg $ snapshot_out_arg)

(* ------------------------------------------------------------------ *)
(* publish                                                             *)
(* ------------------------------------------------------------------ *)

let publish_cmd =
  let output_arg =
    let doc = "Bundle file to write." in
    Arg.(required & opt (some string) None & info [ "output" ] ~docv:"FILE" ~doc)
  in
  let run dtds constraints pattern output =
    let s = load_schema dtds in
    let repo = Repository.create s in
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    (match load_pattern s pattern with
     | Some p -> Repository.register_pattern repo p
     | None -> ());
    Bundle.save_file repo output;
    Printf.printf "wrote %s\n" output
  in
  Cmd.v
    (Cmd.info "publish"
       ~doc:
         "Compile constraints and patterns into a design-time bundle (the \
          simplified checks are persisted for runtimes and reviewers)")
    Term.(const run $ dtd_arg $ constraints_arg $ pattern_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

module Srv = Xic_server.Server
module Proto = Xic_server.Protocol

let socket_arg =
  let doc = "Serve (or reach the server) on this Unix-domain socket path." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Serve (or reach the server) on this TCP address, as HOST:PORT." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let server_address socket tcp =
  match (socket, tcp) with
  | Some path, None -> Proto.Unix_sock path
  | None, Some hp ->
    (match Proto.address_of_string hp with
     | Proto.Tcp _ as a -> a
     | Proto.Unix_sock _ -> die "--tcp expects HOST:PORT, got %S" hp)
  | Some _, Some _ -> die "--socket and --tcp are mutually exclusive"
  | None, None -> die "one of --socket or --tcp is required"

let serve_cmd =
  let checkpoint_on_shutdown_arg =
    let doc =
      "Write a final checkpoint to the --snapshot path during graceful \
       shutdown (SIGINT/SIGTERM or a 'shutdown' request)."
    in
    Arg.(value & flag & info [ "checkpoint-on-shutdown" ] ~doc)
  in
  let log_arg =
    let doc =
      "Write structured server logs to $(docv) ('-' = stderr).  Every \
       line is stamped with the monotonic clock and, while a request is \
       being handled, its trace id."
    in
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)
  in
  let log_level_arg =
    let doc = "Log level: debug, info, warn or error." in
    Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  let log_format_arg =
    let doc = "Log line format: text or json (JSON-lines)." in
    Arg.(value & opt string "text" & info [ "log-format" ] ~docv:"FMT" ~doc)
  in
  let serve_trace_arg =
    let doc =
      "Trace every request: each one becomes a span tagged with its op, \
       generation, route and the caller's trace id.  At shutdown the \
       session's spans are written to $(docv) as Chrome trace_event \
       JSON — or, when $(docv) is '-', as an indented text tree to \
       stderr."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let slow_requests_arg =
    let doc = "How many slowest requests the 'slow' op retains." in
    Arg.(value & opt int 8 & info [ "slow-requests" ] ~docv:"N" ~doc)
  in
  let run dtds docs snapshot constraints pattern no_validate legacy_loader
      runtime_simp journal eval_budget no_index jobs incremental
      no_incremental socket tcp checkpoint_on_shutdown log log_level
      log_format trace slow_requests =
    ignore incremental;
    (* instrumentation first, so document-load spans join the session *)
    (match XLog.level_of_string log_level with
     | Some l -> XLog.set_level l
     | None -> die "unknown log level %S (debug|info|warn|error)" log_level);
    (match log_format with
     | "text" -> XLog.set_format XLog.Text
     | "json" -> XLog.set_format XLog.Json
     | f -> die "unknown log format %S (text|json)" f);
    (match log with
     | None -> ()
     | Some path ->
       (match XLog.open_path path with
        | Ok () -> ()
        | Error m -> die "cannot open log: %s" m));
    if trace <> None then Obs.Trace.set_enabled true;
    let s = load_schema dtds in
    let repo, meta =
      load_state ~legacy:legacy_loader ~validate:(not no_validate) s ~snapshot
        docs
    in
    if no_index then Repository.set_use_index repo false;
    Repository.set_eval_budget repo eval_budget;
    (if jobs < 1 then die "--jobs must be at least 1"
     else Repository.set_parallelism repo jobs);
    List.iter (Repository.add_constraint repo) (load_constraints s constraints);
    (match load_pattern s pattern with
     | Some p -> Repository.register_pattern repo p
     | None -> ());
    (* a resident server wants the materialized views resident too:
       incremental checking is ON unless explicitly disabled *)
    if not no_incremental then Repository.set_incremental repo true;
    (* bring the state up to date with the journal before serving *)
    (match (meta, journal) with
     | Some m, Some jpath -> replay_onto_snapshot repo m jpath
     | None, Some jpath when Sys.file_exists jpath ->
       let rr =
         match Xic_journal.Journal.read jpath with
         | rr -> rr
         | exception Xic_journal.Journal.Journal_error m -> die "%s" m
       in
       let r = Repository.recover rr repo in
       List.iter
         (fun (txn, m) ->
           die "replay error in journaled transaction %d: %s" txn m)
         r.Repository.replay_errors
     | _ -> ());
    let journal = Option.map open_journal journal in
    let config =
      { Srv.journal; snapshot_path = snapshot; checkpoint_on_shutdown;
        fallback =
          (if runtime_simp then `Runtime_simplification else `Full_check);
        slow_capacity = max 1 slow_requests }
    in
    let server = Srv.create ~config repo in
    let addr = server_address socket tcp in
    let lfd =
      match Srv.listen addr with
      | fd -> fd
      | exception Proto.Protocol_error m -> die "%s" m
      | exception Unix.Unix_error (e, _, arg) ->
        die "cannot listen on %s: %s %s"
          (Proto.address_to_string addr)
          (Unix.error_message e) arg
    in
    Printf.printf "serving on %s (pid %d)\n%!"
      (Proto.address_to_string addr)
      (Unix.getpid ());
    Srv.serve server lfd;
    (match addr with
     | Proto.Unix_sock path ->
       (try Sys.remove path with Sys_error _ -> ())
     | Proto.Tcp _ -> ());
    (match trace with
     | None -> ()
     | Some "-" -> prerr_string (Obs.Trace.to_text (Srv.trace_roots server))
     | Some path ->
       let oc =
         match open_out path with
         | oc -> oc
         | exception Sys_error m -> die "cannot write %s: %s" path m
       in
       output_string oc (Obs.Trace.to_chrome_json (Srv.trace_roots server));
       output_char oc '\n';
       close_out oc;
       Printf.printf "wrote trace %s\n" path);
    XLog.close ();
    Printf.printf "served %d request(s); shutdown complete\n%!"
      (Srv.requests server)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident check server: load once, keep the arena, store, \
          plan cache, indexes and materialized views warm, and answer \
          check/guard/txn/stats/checkpoint requests over a socket")
    Term.(
      const run $ dtd_arg $ docs_arg $ snapshot_arg $ constraints_arg
      $ pattern_arg $ no_validate_arg $ legacy_loader_arg $ runtime_simp_arg
      $ journal_arg $ eval_budget_arg $ no_index_arg $ jobs_arg
      $ incremental_arg $ no_incremental_arg $ socket_arg $ tcp_arg
      $ checkpoint_on_shutdown_arg $ log_arg $ log_level_arg $ log_format_arg
      $ serve_trace_arg $ slow_requests_arg)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

let expect_ok resp =
  if not (Proto.bool_field "ok" resp) then
    die "server error: %s"
      (Option.value ~default:(Proto.to_string resp)
         (Proto.string_field "error" resp));
  resp

(* Render a guard/statement response with the same wording as the local
   [print_outcome], so server and one-shot CLI transcripts line up. *)
let print_response_outcome resp =
  let constraint_of () =
    Option.value ~default:"?" (Proto.string_field "constraint" resp)
  in
  (match Proto.list_field "degradations" resp with
   | Some ds ->
     List.iter
       (fun d ->
         Printf.printf "note: optimized check %s degraded (%s)\n"
           (Option.value ~default:"?" (Proto.string_field "check" d))
           (Option.value ~default:"?" (Proto.string_field "reason" d)))
       ds
   | None -> ());
  match Proto.string_field "outcome" resp with
  | Some "applied" ->
    (match Proto.string_field "strategy" resp with
     | Some "optimized" ->
       print_endline "applied (validated by the optimized pre-check)"
     | Some "runtime_simplified" ->
       print_endline "applied (validated by a runtime-simplified pre-check)"
     | _ -> print_endline "applied (validated by the full check)");
    true
  | Some "rejected" ->
    Printf.printf "rejected before execution: violates %s\n" (constraint_of ());
    false
  | Some "rolled_back" ->
    Printf.printf "rolled back: violates %s\n" (constraint_of ());
    false
  | _ -> die "unexpected response: %s" (Proto.to_string resp)

let client_cmd =
  let op_arg =
    let doc =
      "Operation: ping, check, guard, batch, txn, begin, stmt, commit, \
       abort, pin, unpin, history, checkpoint, stats, metrics, slow, \
       shutdown."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let trace_id_arg =
    let doc =
      "Send $(docv) as the request's trace_id: the server stamps it on \
       the request span and every log line, and echoes it on the \
       response."
    in
    Arg.(value & opt (some string) None & info [ "trace-id" ] ~docv:"ID" ~doc)
  in
  let updates_arg =
    let doc = "XUpdate statement file (repeatable for batch/txn)." in
    Arg.(value & opt_all file [] & info [ "update" ] ~docv:"FILE" ~doc)
  in
  let pin_arg =
    let doc = "Pin id (for 'check --pin' and 'unpin')." in
    Arg.(value & opt (some int) None & info [ "pin" ] ~docv:"N" ~doc)
  in
  let as_of_arg =
    let doc =
      "For 'check': time-travel verdict at retained generation $(docv) \
       instead of the live store (see 'history' for what is retained)."
    in
    Arg.(value & opt (some int) None & info [ "as-of" ] ~docv:"GEN" ~doc)
  in
  let generation_arg =
    let doc =
      "For 'pin': pin retained generation $(docv) instead of the current \
       committed one."
    in
    Arg.(
      value & opt (some int) None & info [ "generation" ] ~docv:"GEN" ~doc)
  in
  let path_arg =
    let doc = "Snapshot path for 'checkpoint' (server default otherwise)." in
    Arg.(value & opt (some string) None & info [ "path" ] ~docv:"FILE" ~doc)
  in
  let abort_arg =
    let doc = "For 'txn': apply the statements, then roll the batch back." in
    Arg.(value & flag & info [ "abort" ] ~doc)
  in
  let run op socket tcp updates pin as_of generation path runtime_simp abort
      trace_id =
    let addr = server_address socket tcp in
    let fd =
      match Proto.connect addr with
      | fd -> fd
      | exception Proto.Protocol_error m -> die "%s" m
    in
    (* every frame this invocation sends carries the trace id *)
    let with_trace = function
      | Proto.Obj fields ->
        Proto.Obj
          (match trace_id with
           | Some id -> fields @ [ ("trace_id", Proto.String id) ]
           | None -> fields)
      | j -> j
    in
    let rq j =
      match Proto.request fd (with_trace j) with
      | resp -> expect_ok resp
      | exception Proto.Protocol_error m -> die "%s" m
    in
    let fallback_fields =
      if runtime_simp then [ ("fallback", Proto.String "runtime") ] else []
    in
    let one_update () =
      match updates with
      | [ path ] -> read_file path
      | _ -> die "%s requires exactly one --update FILE" op
    in
    let failed = ref false in
    (match op with
     | "ping" ->
       ignore (rq (Proto.Obj [ ("op", Proto.String "ping") ]));
       print_endline "pong"
     | "check" ->
       let fields =
         ("op", Proto.String "check")
         :: ((match pin with Some id -> [ ("pin", Proto.Int id) ] | None -> [])
             @
             match as_of with
             | Some g -> [ ("as_of", Proto.Int g) ]
             | None -> [])
       in
       let resp = rq (Proto.Obj fields) in
       (match Proto.list_field "violated" resp with
        | Some [] | None ->
          Printf.printf "consistent (generation %d, %s)\n"
            (Option.value ~default:0 (Proto.int_field "generation" resp))
            (Option.value ~default:"live"
               (Proto.string_field "isolation" resp))
        | Some vs ->
          List.iter
            (function
              | Proto.String v -> Printf.printf "VIOLATED: %s\n" v
              | _ -> ())
            vs;
          failed := true)
     | "guard" ->
       let resp =
         rq
           (Proto.Obj
              (( [ ("op", Proto.String "guard");
                   ("update", Proto.String (one_update ())) ]
               @ fallback_fields )))
       in
       if not (print_response_outcome resp) then failed := true
     | "batch" ->
       (* pipeline every guard before reading any response: frames that
          land in one server poll round apply as a single batch *)
       if updates = [] then die "batch requires at least one --update FILE";
       let stmts = List.map read_file updates in
       List.iter
         (fun u ->
           Proto.write_frame fd
             (with_trace
                (Proto.Obj
                   (( [ ("op", Proto.String "guard");
                        ("update", Proto.String u) ]
                    @ fallback_fields )))))
         stmts;
       List.iteri
         (fun i _ ->
           let resp =
             match Proto.read_frame fd with
             | Some r -> expect_ok r
             | None -> die "server closed the connection"
             | exception Proto.Protocol_error m -> die "%s" m
           in
           Printf.printf "statement %d: " (i + 1);
           if not (print_response_outcome resp) then failed := true)
         stmts
     | "txn" ->
       if updates = [] then die "txn requires at least one --update FILE";
       let stmts = List.map read_file updates in
       let resp =
         rq
           (Proto.Obj
              (( [ ("op", Proto.String "txn");
                   ( "updates",
                     Proto.List
                       (List.map (fun u -> Proto.String u) stmts) ) ]
               @ fallback_fields
               @ if abort then [ ("abort", Proto.Bool true) ] else [] )))
       in
       let applied = ref 0 in
       (match Proto.list_field "results" resp with
        | Some rs ->
          List.iteri
            (fun i r ->
              Printf.printf "statement %d: " (i + 1);
              if print_response_outcome r then incr applied
              else failed := true)
            rs
        | None -> ());
       if abort then print_endline "transaction rolled back"
       else Printf.printf "transaction committed (%d statements)\n" !applied
     | "begin" ->
       let resp = rq (Proto.Obj [ ("op", Proto.String "txn_begin") ]) in
       Printf.printf "transaction %d open\n"
         (Option.value ~default:0 (Proto.int_field "txn" resp))
     | "stmt" ->
       let resp =
         rq
           (Proto.Obj
              (( [ ("op", Proto.String "txn_stmt");
                   ("update", Proto.String (one_update ())) ]
               @ fallback_fields )))
       in
       if not (print_response_outcome resp) then failed := true
     | "commit" ->
       let resp = rq (Proto.Obj [ ("op", Proto.String "txn_commit") ]) in
       Printf.printf "transaction committed (%d statements)\n"
         (Option.value ~default:0 (Proto.int_field "statements" resp))
     | "abort" ->
       ignore (rq (Proto.Obj [ ("op", Proto.String "txn_abort") ]));
       print_endline "transaction rolled back"
     | "pin" ->
       let fields =
         ("op", Proto.String "pin")
         :: (match generation with
             | Some g -> [ ("generation", Proto.Int g) ]
             | None -> [])
       in
       let resp = rq (Proto.Obj fields) in
       Printf.printf "pin %d (generation %d)\n"
         (Option.value ~default:0 (Proto.int_field "pin" resp))
         (Option.value ~default:0 (Proto.int_field "generation" resp))
     | "unpin" ->
       (match pin with
        | None -> die "unpin requires --pin N"
        | Some id ->
          ignore
            (rq
               (Proto.Obj
                  [ ("op", Proto.String "unpin"); ("pin", Proto.Int id) ]));
          Printf.printf "unpinned %d\n" id)
     | "history" ->
       let resp = rq (Proto.Obj [ ("op", Proto.String "history") ]) in
       Printf.printf "generation %d, %d retained, %d pin byte(s)\n"
         (Option.value ~default:0 (Proto.int_field "generation" resp))
         (match Proto.list_field "retained" resp with
          | Some rs -> List.length rs
          | None -> 0)
         (Option.value ~default:0 (Proto.int_field "pin_bytes" resp));
       (match Proto.list_field "retained" resp with
        | Some rs ->
          List.iter
            (fun r ->
              Printf.printf "  generation %d: %d ref(s)\n"
                (Option.value ~default:0 (Proto.int_field "generation" r))
                (Option.value ~default:0 (Proto.int_field "refs" r)))
            rs
        | None -> ())
     | "checkpoint" ->
       let fields =
         ("op", Proto.String "checkpoint")
         :: (match path with
             | Some p -> [ ("path", Proto.String p) ]
             | None -> [])
       in
       let resp = rq (Proto.Obj fields) in
       Printf.printf "checkpointed %d node(s), %d fact(s) to %s (%d bytes)\n"
         (Option.value ~default:0 (Proto.int_field "nodes" resp))
         (Option.value ~default:0 (Proto.int_field "facts" resp))
         (Option.value ~default:"?" (Proto.string_field "path" resp))
         (Option.value ~default:0 (Proto.int_field "bytes" resp))
     | "stats" ->
       let resp = rq (Proto.Obj [ ("op", Proto.String "stats") ]) in
       print_endline (Proto.to_string resp)
     | "metrics" ->
       let resp = rq (Proto.Obj [ ("op", Proto.String "metrics") ]) in
       print_string
         (Option.value ~default:"" (Proto.string_field "body" resp))
     | "slow" ->
       let resp = rq (Proto.Obj [ ("op", Proto.String "slow") ]) in
       print_endline (Proto.to_string resp)
     | "shutdown" ->
       ignore (rq (Proto.Obj [ ("op", Proto.String "shutdown") ]));
       print_endline "server stopping"
     | op -> die "unknown client operation %S" op);
    Unix.close fd;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running 'xicheck serve' instance (checks, guarded \
          updates, batches, streaming transactions, pins, checkpoints, \
          stats, shutdown)")
    Term.(
      const run $ op_arg $ socket_arg $ tcp_arg $ updates_arg $ pin_arg
      $ as_of_arg $ generation_arg $ path_arg $ runtime_simp_arg $ abort_arg
      $ trace_id_arg)

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* Live one-screen summary of a running server: polls the stats,
   metrics and slow ops and renders the headline numbers, the per-op
   latency quantiles, the serve gauges and the slowest requests. *)
let top_cmd =
  let interval_arg =
    let doc = "Seconds between refreshes." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let iterations_arg =
    let doc = "Stop after $(docv) refreshes (default: until interrupted)." in
    Arg.(value & opt (some int) None & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let no_clear_arg =
    let doc = "Do not clear the screen between refreshes (append instead)." in
    Arg.(value & flag & info [ "no-clear" ] ~doc)
  in
  let run socket tcp interval iterations no_clear =
    let addr = server_address socket tcp in
    let fd =
      match Proto.connect addr with
      | fd -> fd
      | exception Proto.Protocol_error m -> die "%s" m
    in
    let rq j =
      match Proto.request fd j with
      | resp -> expect_ok resp
      | exception Proto.Protocol_error m -> die "%s" m
    in
    let num = function
      | Some (Proto.Int i) -> float_of_int i
      | Some (Proto.Float f) -> f
      | _ -> 0.
    in
    let render () =
      let stats = rq (Proto.Obj [ ("op", Proto.String "stats") ]) in
      let slow = rq (Proto.Obj [ ("op", Proto.String "slow") ]) in
      let metrics = rq (Proto.Obj [ ("op", Proto.String "metrics") ]) in
      if not no_clear then print_string "\027[2J\027[H";
      let srv = Option.value ~default:Proto.Null (Proto.member "server" stats) in
      let f name = num (Proto.member name srv) in
      Printf.printf "xicheck top — %s\n" (Proto.address_to_string addr);
      Printf.printf
        "uptime %.1fs  requests %.0f (%.1f/s)  batches %.0f  generation %.0f\n"
        (f "uptime_s") (f "requests") (f "requests_per_sec") (f "batches")
        (f "generation");
      Printf.printf "pins %.0f  open_txn %b  incremental %b\n" (f "pins")
        (Proto.bool_field "open_txn" srv)
        (Proto.bool_field "incremental" srv);
      (* serve gauges, straight off the Prometheus exposition *)
      let body = Option.value ~default:"" (Proto.string_field "body" metrics) in
      let gauges =
        List.filter
          (fun line ->
            String.length line > 10
            && String.sub line 0 10 = "xic_serve_"
            && not (String.contains line '{')
            && not
                 (let base =
                    match String.index_opt line ' ' with
                    | Some i -> String.sub line 0 i
                    | None -> line
                  in
                  let n = String.length base in
                  n > 8 && String.sub base (n - 8) 8 = "_seconds"
                  || (n > 4 && String.sub base (n - 4) 4 = "_sum")
                  || (n > 6 && String.sub base (n - 6) 6 = "_count")))
          (String.split_on_char '\n' body)
      in
      if gauges <> [] then begin
        print_endline "";
        List.iter print_endline gauges
      end;
      (match Proto.member "ops" stats with
       | Some (Proto.Obj []) | None -> ()
       | Some (Proto.Obj ops) ->
         Printf.printf "\n%-16s %8s %9s %9s %9s\n" "op" "count" "p50_ms"
           "p90_ms" "p99_ms";
         List.iter
           (fun (op, o) ->
             Printf.printf "%-16s %8.0f %9.3f %9.3f %9.3f\n" op
               (num (Proto.member "count" o))
               (num (Proto.member "p50_ms" o))
               (num (Proto.member "p90_ms" o))
               (num (Proto.member "p99_ms" o)))
           ops
       | Some _ -> ());
      (match Proto.list_field "slow" slow with
       | Some (_ :: _ as entries) ->
         Printf.printf "\nslowest requests:\n";
         List.iter
           (fun e ->
             Printf.printf "  %9.3fms  %-12s span=%s%s\n"
               (num (Proto.member "ms" e))
               (Option.value ~default:"?" (Proto.string_field "op" e))
               (Option.value ~default:"?" (Proto.string_field "span_id" e))
               (match Proto.string_field "trace_id" e with
                | Some id -> " trace=" ^ id
                | None -> ""))
           entries
       | _ -> ());
      flush stdout
    in
    (match iterations with
     | Some n ->
       for i = 1 to n do
         render ();
         if i < n then Unix.sleepf interval
       done
     | None ->
       while true do
         render ();
         Unix.sleepf interval
       done);
    Unix.close fd
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live one-screen summary of a running 'xicheck serve' instance \
          (polls stats, metrics and slow)")
    Term.(
      const run $ socket_arg $ tcp_arg $ interval_arg $ iterations_arg
      $ no_clear_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let size_arg =
    let doc = "Approximate combined size in bytes." in
    Arg.(value & opt int 100_000 & info [ "size" ] ~docv:"BYTES" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let prefix_arg =
    let doc = "Output file prefix (PREFIX.pub.xml and PREFIX.rev.xml)." in
    Arg.(value & opt string "dataset" & info [ "output" ] ~docv:"PREFIX" ~doc)
  in
  let run size seed prefix =
    let ds = Xic_workload.Generator.generate ~seed ~target_bytes:size () in
    write_file (prefix ^ ".pub.xml") ds.Xic_workload.Generator.pub_xml;
    write_file (prefix ^ ".rev.xml") ds.Xic_workload.Generator.rev_xml;
    let st = ds.Xic_workload.Generator.stats in
    Printf.printf "%d pubs, %d tracks, %d reviewers, %d submissions (%d bytes)\n"
      st.Xic_workload.Generator.pubs st.Xic_workload.Generator.tracks
      st.Xic_workload.Generator.reviewers st.Xic_workload.Generator.submissions
      st.Xic_workload.Generator.bytes
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic conference dataset")
    Term.(const run $ size_arg $ seed_arg $ prefix_arg)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "xicheck" ~version:"1.0.0"
      ~doc:"Efficient integrity checking over XML documents (EDBT 2006)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ schema_cmd; compile_cmd; validate_cmd; check_cmd; simplify_cmd;
            guard_cmd; txn_cmd; recover_cmd; checkpoint_cmd; publish_cmd;
            serve_cmd; client_cmd; top_cmd; generate_cmd ]))
