(* Benchmark harness reproducing the paper's evaluation (Section 7).

   Experiments (see DESIGN.md's per-experiment index):
     fig1a      Figure 1(a) — "Conflict of interests" (Example 1)
     fig1b      Figure 1(b) — "Conference workload"   (Example 2)
     fig_simp   simplification cost (the paper reports < 50 ms)
     ex45       the relational ISSN example (Examples 4/5)
     ablations  datalog- vs xquery-level optimized checks; After without
                Optimize; early rejection vs rollback
     index      indexed vs scan evaluation of full and simplified checks
     journal    write-ahead journaling overhead on guarded updates
     incremental  delta-maintained denial views vs full re-evaluation
     server     resident check server vs one-shot loop; batched guards
     pins       generation pin open latency vs document size
     server_pins  pinned readers under writer churn over the socket
     micro      Bechamel micro-benchmarks of the moving parts
     all        everything above (default)

   Document sizes are scaled-down stand-ins for the paper's 32–256 MB
   (same 1:8 spread); absolute numbers differ from the paper's testbed,
   the *shape* of the curves is what is reproduced. *)

open Xic_core
module Conf = Xic_workload.Conference
module Gen = Xic_workload.Generator
module T = Xic_datalog.Term
module Obs = Xic_obs.Obs

let default_sizes = [ 32_000; 64_000; 128_000; 256_000; 512_000; 1_024_000 ]

let now () = Unix.gettimeofday ()

(* Mean wall-clock ms of [f] over [reps] runs after one warm-up. *)
let time_ms ?(reps = 5) f =
  ignore (f ());
  let t0 = now () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (now () -. t0) *. 1000.0 /. float_of_int reps

(* (median, min) wall-clock ms of [f] over at least 5 samples after one
   warm-up.  [batch] amortizes timer granularity for µs-scale runs: each
   sample times [batch] consecutive runs and reports the per-run mean. *)
(* [clean] runs a full major collection before each sample (outside the
   timed window), so runs that drop MB-scale structures per rep — the
   cold-start loaders — measure the operation itself rather than the
   incremental collection of the previous rep's garbage. *)
let time_stats ?(reps = 5) ?(batch = 1) ?(clean = false) f =
  ignore (f ());
  let reps = max reps 5 in
  let sample () =
    if clean then Gc.full_major ();
    let t0 = now () in
    for _ = 1 to batch do
      ignore (f ())
    done;
    (now () -. t0) *. 1000.0 /. float_of_int batch
  in
  let samples = Array.init reps (fun _ -> sample ()) in
  Array.sort Float.compare samples;
  let n = Array.length samples in
  let median =
    if n mod 2 = 1 then samples.(n / 2)
    else (samples.((n / 2) - 1) +. samples.(n / 2)) /. 2.0
  in
  (median, samples.(0))

(* Accumulated machine-readable results, written when --json is given. *)
let json_sections : (string * string) list ref = ref []

let add_json name value = json_sections := !json_sections @ [ (name, value) ]

let write_json path ~reps =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"reps\": %d" reps;
  List.iter
    (fun (name, value) -> Printf.fprintf oc ",\n  %S: %s" name value)
    !json_sections;
  output_string oc "\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

type setup = {
  repo : Repository.t;
  pattern : Pattern.t;
  ds : Gen.dataset;
}

let setup ~size ~constraint_ () =
  let s = Conf.schema () in
  let ds = Gen.generate ~seed:42 ~target_bytes:size () in
  let repo = Repository.create s in
  (* validation is part of loading; skip it here to keep setup fast *)
  Repository.load_document ~validate:false repo ds.Gen.pub_xml;
  Repository.load_document ~validate:false repo ds.Gen.rev_xml;
  Repository.add_constraint repo (constraint_ s);
  let pattern = Conf.submission_pattern s in
  Repository.register_pattern repo pattern;
  { repo; pattern; ds }

(* The three curves of Figure 1: full check, optimized check, and
   update + full check + rollback (the paper's diamonds, squares and
   triangles). *)
let figure ?json_key ~name ~constraint_ ~sizes ~reps () =
  Printf.printf "# %s\n" name;
  Printf.printf
    "# %-12s %-10s %-14s %-14s %-20s %s\n" "size(bytes)" "subs"
    "original(ms)" "optimized(ms)" "upd+check+undo(ms)" "speedup";
  let rows =
    List.map
      (fun size ->
        let { repo; pattern; ds } = setup ~size ~constraint_ () in
        let legal =
          Conf.insert_submission ~select:ds.Gen.legal_select ~title:"Bench Paper"
            ~author:ds.Gen.legal_author
        in
        let valuation =
          match Repository.match_update repo legal with
          | Some (_, v) -> v
          | None -> failwith "bench update must match the pattern"
        in
        let orig_med, orig_min =
          time_stats ~reps (fun () -> Repository.check_full repo)
        in
        let opt_med, opt_min =
          time_stats ~reps ~batch:20 (fun () ->
              Repository.check_optimized repo pattern valuation)
        in
        let upd_med, _ =
          time_stats ~reps (fun () ->
              let undo = Repository.apply_unchecked repo legal in
              let r = Repository.check_full repo in
              Repository.rollback repo undo;
              r)
        in
        let speedup = orig_med /. (opt_med +. 1e-9) in
        Printf.printf "%-14d %-10d %-14.3f %-14.4f %-20.3f %.0fx\n%!"
          ds.Gen.stats.Gen.bytes ds.Gen.stats.Gen.submissions orig_med opt_med
          upd_med speedup;
        Printf.sprintf
          "{\"bytes\": %d, \"subs\": %d, \"full_median_ms\": %.4f, \
           \"full_min_ms\": %.4f, \"optimized_median_ms\": %.5f, \
           \"optimized_min_ms\": %.5f, \"upd_check_undo_median_ms\": %.4f, \
           \"speedup\": %.1f}"
          ds.Gen.stats.Gen.bytes ds.Gen.stats.Gen.submissions orig_med orig_min
          opt_med opt_min upd_med speedup)
      sizes
  in
  (match json_key with
   | Some key -> add_json key ("[\n    " ^ String.concat ",\n    " rows ^ "\n  ]")
   | None -> ());
  print_newline ()

let fig1a ~sizes ~reps () =
  figure ~json_key:"fig1a" ~name:"Figure 1(a) — Conflict of interests (Example 1)"
    ~constraint_:Conf.conflict ~sizes ~reps ()

let fig1b ~sizes ~reps () =
  figure ~json_key:"fig1b" ~name:"Figure 1(b) — Conference workload (Example 2)"
    ~constraint_:Conf.workload ~sizes ~reps ()

(* ------------------------------------------------------------------ *)
(* PR 3: compiled check pipeline — plan cache and multicore checking    *)
(* ------------------------------------------------------------------ *)

(* Interpreted (re-lower the XQuery on every evaluation) versus compiled
   cached plans, plan-cache counters, and parallel denial checking at 1,
   2 and 4 domains — all on the full three-constraint suite at the
   largest document size, with verdict agreement asserted across every
   route. *)
let pipeline ~sizes ~reps () =
  let size = List.fold_left max 0 sizes in
  Printf.printf "# Compiled check pipeline (3 constraints, %d bytes)\n" size;
  (* plan-cache counters live in the global metrics registry now; start
     this section from zero so its stats cover only its own repository *)
  Obs.Metrics.reset ();
  let s = Conf.schema () in
  let ds = Gen.generate ~seed:42 ~target_bytes:size () in
  let repo = Repository.create s in
  Repository.load_document ~validate:false repo ds.Gen.pub_xml;
  Repository.load_document ~validate:false repo ds.Gen.rev_xml;
  List.iter
    (fun c -> Repository.add_constraint repo (c s))
    [ Conf.conflict; Conf.workload; Conf.track_load ];
  let doc = Repository.doc repo in
  let idx = Repository.index repo in
  let cs = Repository.constraints repo in
  let interpreted () =
    List.filter_map
      (fun c ->
        if Constr.violated_xquery ?index:idx doc c then Some c.Constr.name
        else None)
      cs
  in
  let reference = interpreted () in
  let interp_med, interp_min = time_stats ~reps interpreted in
  let compiled_med, compiled_min =
    time_stats ~reps (fun () -> Repository.check_full repo)
  in
  if Repository.check_full repo <> reference then
    failwith "compiled route disagrees with interpreted route";
  Printf.printf "# %-26s %-12s %s\n" "route" "median(ms)" "min(ms)";
  Printf.printf "%-28s %-12.3f %.3f\n" "interpreted (re-lowered)" interp_med
    interp_min;
  Printf.printf "%-28s %-12.3f %.3f\n%!" "compiled (cached plans)" compiled_med
    compiled_min;
  let parallel_rows =
    List.map
      (fun jobs ->
        Repository.set_parallelism repo jobs;
        if Repository.check_full repo <> reference then
          failwith (Printf.sprintf "-j %d disagrees with sequential" jobs);
        let med, min_ =
          time_stats ~reps (fun () -> Repository.check_full repo)
        in
        Printf.printf "%-28s %-12.3f %.3f\n%!"
          (Printf.sprintf "parallel -j %d" jobs) med min_;
        Printf.sprintf "{\"jobs\": %d, \"median_ms\": %.4f, \"min_ms\": %.4f}"
          jobs med min_)
      [ 1; 2; 4 ]
  in
  Repository.set_parallelism repo 1;
  let stats = Repository.plan_stats repo in
  Printf.printf "%s\n" (Repository.plan_stats_line repo);
  Printf.printf "symbols interned: %d\n\n%!" (Symbol.count ());
  add_json "pipeline"
    (Printf.sprintf
       "{\n\
       \    \"size_bytes\": %d,\n\
       \    \"interpreted_median_ms\": %.4f,\n\
       \    \"interpreted_min_ms\": %.4f,\n\
       \    \"compiled_median_ms\": %.4f,\n\
       \    \"compiled_min_ms\": %.4f,\n\
       \    \"plan_hits\": %d,\n\
       \    \"plan_misses\": %d,\n\
       \    \"symbols_interned\": %d,\n\
       \    \"verdicts_agree\": true,\n\
       \    \"parallel\": [%s]\n\
       \  }"
       ds.Gen.stats.Gen.bytes interp_med interp_min compiled_med compiled_min
       stats.Repository.plan_hits stats.Repository.plan_misses (Symbol.count ())
       (String.concat ", " parallel_rows))

(* ------------------------------------------------------------------ *)
(* PR 4: per-stage breakdown from the tracing layer                     *)
(* ------------------------------------------------------------------ *)

(* One fully traced cold run per figure at the largest size: document
   parse, pattern simplification, XQuery translation, relational shred,
   plan compilation and evaluation, each read off the span tree.  Also
   measures the steady-state full check with tracing off and on — the
   disabled cost is the one the <3% regression gate watches. *)
let stages ~sizes ~reps () =
  let size = List.fold_left max 0 sizes in
  Printf.printf "# Per-stage breakdown (traced cold run, %d bytes)\n" size;
  let stage_names =
    [ "parse"; "simplify"; "translate"; "shred"; "compile"; "eval" ]
  in
  let rows =
    List.map
      (fun (key, constraint_) ->
        Obs.Trace.set_enabled true;
        Obs.Metrics.set_detailed true;
        Obs.Trace.reset ();
        let { repo; _ } = setup ~size ~constraint_ () in
        ignore (Repository.store repo : Xic_datalog.Store.t);
        ignore (Repository.check_full repo : string list);
        let roots = Obs.Trace.roots () in
        Obs.Trace.set_enabled false;
        Obs.Metrics.set_detailed false;
        Obs.Trace.reset ();
        let totals = Hashtbl.create 16 in
        let rec walk (sp : Obs.Trace.span) =
          let prev =
            Option.value ~default:0.0
              (Hashtbl.find_opt totals sp.Obs.Trace.name)
          in
          Hashtbl.replace totals sp.Obs.Trace.name
            (prev +. Obs.Trace.duration_ms sp);
          List.iter walk sp.Obs.Trace.children
        in
        List.iter walk roots;
        let get n = Option.value ~default:0.0 (Hashtbl.find_opt totals n) in
        Printf.printf "%-7s" key;
        List.iter (fun n -> Printf.printf " %s=%.3f" n (get n)) stage_names;
        Printf.printf " (ms)\n%!";
        (* steady-state full check, instrumentation off vs on *)
        let off_med, _ =
          time_stats ~reps (fun () -> Repository.check_full repo)
        in
        Obs.Trace.set_enabled true;
        Obs.Metrics.set_detailed true;
        let on_med, _ =
          time_stats ~reps (fun () -> Repository.check_full repo)
        in
        Obs.Trace.set_enabled false;
        Obs.Metrics.set_detailed false;
        Obs.Trace.reset ();
        Printf.printf
          "%-7s full check: tracing off %.3f ms | on %.3f ms (%+.1f%%)\n%!" key
          off_med on_med
          ((on_med -. off_med) /. (off_med +. 1e-9) *. 100.0);
        Printf.sprintf
          "{\"figure\": %S, %s, \"full_untraced_median_ms\": %.4f, \
           \"full_traced_median_ms\": %.4f}"
          key
          (String.concat ", "
             (List.map
                (fun n -> Printf.sprintf "\"%s_ms\": %.4f" n (get n))
                stage_names))
          off_med on_med)
      [ ("fig1a", Conf.conflict); ("fig1b", Conf.workload) ]
  in
  add_json "stages" ("[\n    " ^ String.concat ",\n    " rows ^ "\n  ]");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ingestion: parse-only vs legacy parse-then-shred vs fused one-pass  *)
(* ------------------------------------------------------------------ *)

let ingest ~sizes ~reps () =
  Printf.printf "# Ingestion (cold load of both documents into a fresh repo)\n";
  Printf.printf "# %-12s %-10s %-15s %-19s %-12s %s\n" "size(bytes)" "subs"
    "parse_only(ms)" "legacy_p+shred(ms)" "fused(ms)" "speedup";
  let rows =
    List.map
      (fun size ->
        let s = Conf.schema () in
        let ds = Gen.generate ~seed:42 ~target_bytes:size () in
        let parse_only () =
          ignore (Xic_xml.Xml_parser.parse_string ds.Gen.pub_xml);
          ignore (Xic_xml.Xml_parser.parse_string ds.Gen.rev_xml)
        in
        let legacy () =
          let repo = Repository.create s in
          Repository.load_document ~validate:false repo ds.Gen.pub_xml;
          Repository.load_document ~validate:false repo ds.Gen.rev_xml;
          (* force the second-walk shred the legacy path defers *)
          ignore (Repository.store repo : Xic_datalog.Store.t);
          repo
        in
        let fused () =
          let repo = Repository.create s in
          Repository.load_fused ~validate:false repo ds.Gen.pub_xml;
          Repository.load_fused ~validate:false repo ds.Gen.rev_xml;
          (* already materialised during the parse: a field read *)
          ignore (Repository.store repo : Xic_datalog.Store.t);
          repo
        in
        (* Both load paths must agree exactly: same facts, same verdicts
           on Examples 1 and 2, at every size. *)
        let repo_l = legacy () and repo_f = fused () in
        if
          not
            (Xic_datalog.Store.equal (Repository.store repo_l)
               (Repository.store repo_f))
        then failwith "ingest: fused and legacy stores differ";
        List.iter
          (fun constraint_ ->
            let c = constraint_ s in
            Repository.add_constraint repo_l c;
            Repository.add_constraint repo_f c;
            let vl = Repository.check_full repo_l
            and vf = Repository.check_full repo_f in
            if vl <> vf then failwith "ingest: fused and legacy verdicts differ")
          [ Conf.conflict; Conf.workload ];
        let p_med, p_min = time_stats ~reps (fun () -> parse_only ()) in
        let l_med, l_min = time_stats ~reps (fun () -> ignore (legacy ())) in
        let f_med, f_min = time_stats ~reps (fun () -> ignore (fused ())) in
        let speedup = l_med /. (f_med +. 1e-9) in
        Printf.printf "%-14d %-10d %-15.3f %-19.3f %-12.3f %.1fx\n%!"
          ds.Gen.stats.Gen.bytes ds.Gen.stats.Gen.submissions p_med l_med f_med
          speedup;
        Printf.sprintf
          "{\"bytes\": %d, \"subs\": %d, \"parse_only_median_ms\": %.4f, \
           \"parse_only_min_ms\": %.4f, \"legacy_parse_shred_median_ms\": %.4f, \
           \"legacy_parse_shred_min_ms\": %.4f, \"fused_median_ms\": %.4f, \
           \"fused_min_ms\": %.4f, \"speedup\": %.1f}"
          ds.Gen.stats.Gen.bytes ds.Gen.stats.Gen.submissions p_med p_min l_med
          l_min f_med f_min speedup)
      sizes
  in
  add_json "ingest" ("[\n    " ^ String.concat ",\n    " rows ^ "\n  ]");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Cold start: parse vs fused load vs binary snapshot load             *)
(* ------------------------------------------------------------------ *)

(* A resident checker restarting (or a recovery) can skip XML entirely:
   the snapshot holds the arena, symbol names and fact store verbatim.
   Loading it must beat even the fused single-pass loader — the snapshot
   is the cold-start fast path the checkpoint subsystem buys. *)
let coldstart ~sizes ~reps () =
  Printf.printf
    "# Cold start (rebuild repo + store: XML parse vs fused load vs snapshot)\n";
  Printf.printf "# %-12s %-10s %-15s %-12s %-14s %s\n" "size(bytes)" "subs"
    "parse_only(ms)" "fused(ms)" "snapshot(ms)" "snap_speedup";
  let rows =
    List.map
      (fun size ->
        let s = Conf.schema () in
        let ds = Gen.generate ~seed:42 ~target_bytes:size () in
        let spath = Printf.sprintf "bench_coldstart_%d.xis" size in
        let parse_only () =
          ignore (Xic_xml.Xml_parser.parse_string ds.Gen.pub_xml);
          ignore (Xic_xml.Xml_parser.parse_string ds.Gen.rev_xml)
        in
        let fused () =
          let repo = Repository.create s in
          Repository.load_fused ~validate:false repo ds.Gen.pub_xml;
          Repository.load_fused ~validate:false repo ds.Gen.rev_xml;
          ignore (Repository.store repo : Xic_datalog.Store.t);
          repo
        in
        let snap_bytes =
          (Repository.checkpoint (fused ()) spath).Repository.snapshot_bytes
        in
        let snap_load () =
          let repo = Repository.create s in
          ignore (Repository.load_snapshot repo spath);
          ignore (Repository.store repo : Xic_datalog.Store.t);
          repo
        in
        (* The snapshot must restore the exact state: same facts, same
           verdicts on Examples 1 and 2, at every size. *)
        let repo_f = fused () and repo_s = snap_load () in
        if
          not
            (Xic_datalog.Store.equal (Repository.store repo_f)
               (Repository.store repo_s))
        then failwith "coldstart: snapshot and fused stores differ";
        List.iter
          (fun constraint_ ->
            let c = constraint_ s in
            Repository.add_constraint repo_f c;
            Repository.add_constraint repo_s c;
            let vf = Repository.check_full repo_f
            and vs = Repository.check_full repo_s in
            if vf <> vs then
              failwith "coldstart: snapshot and fused verdicts differ")
          [ Conf.conflict; Conf.workload ];
        let p_med, p_min = time_stats ~reps ~clean:true (fun () -> parse_only ()) in
        let f_med, f_min =
          time_stats ~reps ~clean:true (fun () -> ignore (fused ()))
        in
        let s_med, s_min =
          time_stats ~reps ~clean:true (fun () -> ignore (snap_load ()))
        in
        Sys.remove spath;
        let speedup = f_med /. (s_med +. 1e-9) in
        Printf.printf "%-14d %-10d %-15.3f %-12.3f %-14.3f %.1fx\n%!"
          ds.Gen.stats.Gen.bytes ds.Gen.stats.Gen.submissions p_med f_med s_med
          speedup;
        Printf.sprintf
          "{\"bytes\": %d, \"subs\": %d, \"snapshot_bytes\": %d, \
           \"parse_only_median_ms\": %.4f, \"parse_only_min_ms\": %.4f, \
           \"fused_median_ms\": %.4f, \"fused_min_ms\": %.4f, \
           \"snapshot_median_ms\": %.4f, \"snapshot_min_ms\": %.4f, \
           \"snap_speedup\": %.1f}"
          ds.Gen.stats.Gen.bytes ds.Gen.stats.Gen.submissions snap_bytes p_med
          p_min f_med f_min s_med s_min speedup)
      sizes
  in
  add_json "coldstart" ("[\n    " ^ String.concat ",\n    " rows ^ "\n  ]");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Simplification cost (§7, footnote 4: "less than 50 ms")             *)
(* ------------------------------------------------------------------ *)

let fig_simp () =
  Printf.printf "# Simplification cost (paper: < 50 ms per constraint)\n";
  Printf.printf "# %-12s %-14s %s\n" "constraint" "simp(ms)" "denials in/out";
  let s = Conf.schema () in
  let pattern = Conf.submission_pattern s in
  List.iter
    (fun make ->
      let c = make s in
      let t =
        time_ms ~reps:50 (fun () -> Pattern.simplify s pattern c)
      in
      let out = Pattern.simplify s pattern c in
      Printf.printf "%-14s %-14.3f %d -> %d\n%!" c.Constr.name t
        (List.length c.Constr.datalog) (List.length out))
    [ Conf.conflict; Conf.workload; Conf.track_load ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Examples 4/5: the relational ISSN catalogue                          *)
(* ------------------------------------------------------------------ *)

let ex45 () =
  Printf.printf "# Examples 4/5 — relational ISSN uniqueness\n";
  let phi = Xic_datalog.Parser.parse_denial ":- p(X, Y), p(X, Z), Y != Z" in
  let u = [ Xic_datalog.Parser.parse_atom "p(%i, %t)" ] in
  let simplified = Xic_simplify.Simp.simp ~update:u [ phi ] in
  Printf.printf "Simp^U({phi}) = %s\n"
    (String.concat " ; " (List.map T.denial_str simplified));
  let store = Xic_datalog.Store.create () in
  for k = 1 to 50_000 do
    Xic_datalog.Store.add store "p"
      [ T.Str (Printf.sprintf "issn-%d" k); T.Str (Printf.sprintf "title %d" k) ]
  done;
  let params = [ ("i", T.Str "issn-77"); ("t", T.Str "another title") ] in
  let t_full = time_ms ~reps:5 (fun () -> Xic_datalog.Eval.violated store phi) in
  let t_simp =
    time_ms ~reps:500 (fun () ->
        List.exists (fun d -> Xic_datalog.Eval.violated ~params store d) simplified)
  in
  Printf.printf
    "50k tuples: full check %.3f ms, simplified check %.5f ms (%.0fx)\n\n%!"
    t_full t_simp (t_full /. (t_simp +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let ablations ~reps () =
  let size = 128_000 in
  Printf.printf "# Ablations (%d-byte dataset)\n" size;
  let { repo; pattern; ds } = setup ~size ~constraint_:Conf.conflict () in
  let s = Repository.schema repo in
  Repository.add_constraint repo (Conf.workload s);
  Repository.add_constraint repo (Conf.track_load s);

  (* (a) optimized check: XQuery evaluation vs Datalog store evaluation *)
  let legal =
    Conf.insert_submission ~select:ds.Gen.legal_select ~title:"Bench"
      ~author:ds.Gen.legal_author
  in
  let valuation =
    match Repository.match_update repo legal with
    | Some (_, v) -> v
    | None -> failwith "must match"
  in
  ignore (Repository.store repo);  (* shred outside the timed region *)
  let t_xq =
    time_ms ~reps:(reps * 10) (fun () ->
        Repository.check_optimized repo pattern valuation)
  in
  let t_dl =
    time_ms ~reps:(reps * 10) (fun () ->
        Repository.check_optimized_datalog repo pattern valuation)
  in
  Printf.printf "optimized check: xquery %.4f ms | datalog store %.4f ms\n%!"
    t_xq t_dl;

  (* (b) After without Optimize: the unoptimized output contains the
     original constraints, so checking it costs as much as a full check *)
  let c = Conf.conflict s in
  let after_only = Xic_simplify.After.denials pattern.Pattern.atoms c.Constr.datalog in
  let simplified = Pattern.simplify s pattern c in
  Printf.printf "After alone: %d denials; Simp: %d denials\n"
    (List.length after_only) (List.length simplified);
  let mapping = Schema.mapping s in
  let doc = Repository.doc repo in
  let params = Pattern.xquery_params valuation in
  (* After-only denials still mention fresh-id parameters; bind them to a
     nonexistent placeholder node for the measurement of the translatable
     subset. *)
  let translatable =
    List.filter_map
      (fun d ->
        match Xic_translate.Translate.denial mapping d with
        | q -> if List.for_all (fun p -> List.mem_assoc p params || p = "p") (Xic_xquery.Ast.params q) then Some q else None
        | exception Xic_translate.Translate.Untranslatable _ -> None)
      after_only
  in
  let t_after =
    time_ms ~reps (fun () ->
        List.exists (fun q -> Xic_xquery.Eval.eval_bool doc ~params q) translatable)
  in
  let t_simp =
    time_ms ~reps:(reps * 10) (fun () ->
        Repository.check_optimized repo pattern valuation)
  in
  Printf.printf
    "checking After-only output (%d translatable denials): %.3f ms | Simp output: %.4f ms\n%!"
    (List.length translatable) t_after t_simp;

  (* (c) early rejection vs apply + detect + rollback for illegal updates *)
  let illegal =
    Conf.insert_submission ~select:ds.Gen.conflict_select ~title:"Bad"
      ~author:ds.Gen.conflict_reviewer
  in
  let bad_valuation =
    match Repository.match_update repo illegal with
    | Some (_, v) -> v
    | None -> failwith "must match"
  in
  let t_early =
    time_ms ~reps:(reps * 10) (fun () ->
        Repository.check_optimized repo pattern bad_valuation)
  in
  let t_late =
    time_ms ~reps (fun () ->
        let undo = Repository.apply_unchecked repo illegal in
        let r = Repository.check_full repo in
        Repository.rollback repo undo;
        r)
  in
  Printf.printf
    "illegal update: early rejection %.4f ms | apply+detect+rollback %.3f ms (%.0fx)\n%!"
    t_early t_late (t_late /. (t_early +. 1e-9));

  (* (d) runtime simplification (Section 7, footnote 4): an unregistered
     update pattern still gets a pre-execution check by running Simp on
     the fly; compare against the execute–check–compensate strategy. *)
  let fresh_repo () =
    let s2 = Conf.schema () in
    let r = Repository.create s2 in
    Repository.load_document ~validate:false r ds.Gen.pub_xml;
    Repository.load_document ~validate:false r ds.Gen.rev_xml;
    Repository.add_constraint r (Conf.conflict s2);
    Repository.add_constraint r (Conf.workload s2);
    Repository.add_constraint r (Conf.track_load s2);
    r
  in
  let r1 = fresh_repo () in
  let illegal2 =
    Conf.insert_submission ~select:ds.Gen.conflict_select ~title:"Bad"
      ~author:ds.Gen.conflict_reviewer
  in
  let t_runtime =
    time_ms ~reps (fun () ->
        match Repository.guarded_update ~fallback:`Runtime_simplification r1 illegal2 with
        | Repository.Rejected_early _ -> true
        | _ -> failwith "expected early rejection")
  in
  let r2 = fresh_repo () in
  let t_fullfb =
    time_ms ~reps (fun () ->
        match Repository.guarded_update ~fallback:`Full_check r2 illegal2 with
        | Repository.Rolled_back _ -> true
        | _ -> failwith "expected rollback")
  in
  Printf.printf
    "unregistered illegal update: runtime simplification %.3f ms | full-check fallback %.3f ms (%.0fx)\n\n%!"
    t_runtime t_fullfb (t_fullfb /. (t_runtime +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Indexed vs scan evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* The same checks answered by the scanning interpreter and through the
   secondary indexes (identical verdicts; the warm-up run of [time_ms]
   absorbs the one-off lazy index build). *)
let index_bench ~sizes ~reps () =
  List.iter
    (fun (name, constraint_) ->
      Printf.printf "# Indexed vs scan — %s\n" name;
      Printf.printf "# %-12s %-12s %-12s %-9s %-14s %-14s %s\n" "size(bytes)"
        "full/scan" "full/idx" "speedup" "simplified/scan" "simplified/idx"
        "speedup";
      List.iter
        (fun size ->
          let { repo; pattern; ds } = setup ~size ~constraint_ () in
          let legal =
            Conf.insert_submission ~select:ds.Gen.legal_select ~title:"Bench"
              ~author:ds.Gen.legal_author
          in
          let valuation =
            match Repository.match_update repo legal with
            | Some (_, v) -> v
            | None -> failwith "bench update must match the pattern"
          in
          let timed_pair f =
            Repository.set_use_index repo false;
            let scan = f () in
            Repository.set_use_index repo true;
            let indexed = f () in
            (scan, indexed)
          in
          let full_scan, full_idx =
            timed_pair (fun () ->
                time_ms ~reps (fun () -> Repository.check_full repo))
          in
          let simp_scan, simp_idx =
            timed_pair (fun () ->
                time_ms ~reps:(reps * 20) (fun () ->
                    Repository.check_optimized repo pattern valuation))
          in
          Printf.printf "%-14d %-12.3f %-12.3f %-9s %-15.4f %-14.4f %s\n%!"
            ds.Gen.stats.Gen.bytes full_scan full_idx
            (Printf.sprintf "%.1fx" (full_scan /. (full_idx +. 1e-9)))
            simp_scan simp_idx
            (Printf.sprintf "%.1fx" (simp_scan /. (simp_idx +. 1e-9))))
        sizes;
      print_newline ())
    [ ("Conflict of interests (Example 1)", Conf.conflict);
      ("Conference workload (Example 2)", Conf.workload) ]

(* ------------------------------------------------------------------ *)
(* Write-ahead journaling overhead                                      *)
(* ------------------------------------------------------------------ *)

(* One journaled transaction = two records (intent + commit/abort), each
   fsync'd in the default durable mode.  The benchmark runs the same
   guarded update bare, journaled without fsync, and journaled durably;
   the transaction is rolled back each time so the repository (and hence
   the optimized-check cost) stays fixed across repetitions. *)
let journal_bench ~sizes ~reps () =
  Printf.printf "# Write-ahead journaling overhead (guarded update, ms/op)\n";
  Printf.printf "# %-12s %-14s %-16s %-16s %s\n" "size(bytes)" "bare"
    "journal(nosync)" "journal(fsync)" "fsync cost";
  let reps = reps * 10 in
  List.iter
    (fun size ->
      let { repo; ds; _ } = setup ~size ~constraint_:Conf.conflict () in
      let legal =
        Conf.insert_submission ~select:ds.Gen.legal_select ~title:"Bench"
          ~author:ds.Gen.legal_author
      in
      let guarded ?journal () =
        let tx = Repository.begin_txn ?journal repo in
        (match Repository.txn_apply tx legal with
         | Repository.Applied _ -> ()
         | _ -> failwith "bench update must be applied");
        Repository.rollback_txn tx
      in
      let t_bare = time_ms ~reps (fun () -> guarded ()) in
      let with_journal ~sync =
        let path = Printf.sprintf "bench_journal_%b.j" sync in
        let j = Xic_journal.Journal.open_ ~sync path in
        let t = time_ms ~reps (fun () -> guarded ~journal:j ()) in
        Xic_journal.Journal.close j;
        Sys.remove path;
        t
      in
      let t_nosync = with_journal ~sync:false in
      let t_sync = with_journal ~sync:true in
      Printf.printf "%-14d %-14.4f %-16.4f %-16.4f %+.4f ms\n%!"
        ds.Gen.stats.Gen.bytes t_bare t_nosync t_sync (t_sync -. t_nosync))
    sizes;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let s = Conf.schema () in
  let ds = Gen.generate ~seed:42 ~target_bytes:64_000 () in
  let repo = Repository.create s in
  Repository.load_document ~validate:false repo ds.Gen.pub_xml;
  Repository.load_document ~validate:false repo ds.Gen.rev_xml;
  Repository.add_constraint repo (Conf.conflict s);
  let pattern = Conf.submission_pattern s in
  Repository.register_pattern repo pattern;
  let doc = Repository.doc repo in
  let mapping = Schema.mapping s in
  let legal =
    Conf.insert_submission ~select:ds.Gen.legal_select ~title:"Bench"
      ~author:ds.Gen.legal_author
  in
  let valuation =
    match Repository.match_update repo legal with
    | Some (_, v) -> v
    | None -> failwith "must match"
  in
  let xpath_all_subs = Xic_xpath.Parser.parse "//sub" in
  let c1 = Conf.conflict s in
  let tests =
    [
      Test.make ~name:"xml_parse_64k" (Staged.stage (fun () ->
          ignore (Xic_xml.Xml_parser.parse_string ds.Gen.rev_xml)));
      Test.make ~name:"xpath_descendant" (Staged.stage (fun () ->
          ignore (Xic_xpath.Eval.select doc xpath_all_subs)));
      Test.make ~name:"shred_64k" (Staged.stage (fun () ->
          ignore (Xic_relmap.Shred.shred mapping doc)));
      Test.make ~name:"compile_constraint" (Staged.stage (fun () ->
          ignore (Conf.conflict s)));
      Test.make ~name:"simplify_conflict" (Staged.stage (fun () ->
          ignore (Pattern.simplify s pattern c1)));
      Test.make ~name:"optimized_check" (Staged.stage (fun () ->
          ignore (Repository.check_optimized repo pattern valuation)));
      Test.make ~name:"pattern_match" (Staged.stage (fun () ->
          ignore (Repository.match_update repo legal)));
    ]
  in
  let grouped = Test.make_grouped ~name:"micro" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  Printf.printf "# Micro-benchmarks (monotonic clock, ns/run)\n";
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-30s %14.1f ns/run\n%!" name est
      | _ -> Printf.printf "%-30s (no estimate)\n%!" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* PR 7: incremental (delta-driven) checking                           *)
(* ------------------------------------------------------------------ *)

(* Post-update verdict cost, full re-evaluation vs the delta-maintained
   views: per document size, dirty the store with a k-modification
   statement, time one verdict, undo — so the full check faces a
   document-sized problem every sample while the incremental check sees
   only the delta.  Like the paper's optimized curves in Figure 1, the
   incremental column should go flat in document size and scale with k
   instead. *)
let incremental_bench ~sizes ~reps () =
  Printf.printf
    "# Incremental checking — maintained views vs full re-evaluation\n";
  Printf.printf "# %-12s %-6s %-14s %-16s %s\n" "size(bytes)" "stmts"
    "full(ms)" "incremental(ms)" "speedup";
  let ks = [ 1; 4; 16 ] in
  let rows =
    List.concat_map
      (fun size ->
        let { repo; ds; _ } = setup ~size ~constraint_:Conf.conflict () in
        Repository.set_incremental repo true;
        ignore (Repository.check_incremental repo : string list);
        List.map
          (fun k ->
            let u =
              List.concat
                (List.init k (fun i ->
                     Conf.insert_submission ~select:ds.Gen.legal_select
                       ~title:(Printf.sprintf "Bench Paper %d" i)
                       ~author:ds.Gen.legal_author))
            in
            (* verdict parity, once per row *)
            let undo = Repository.apply_unchecked repo u in
            let full = List.sort compare (Repository.check_full repo) in
            let incr = List.sort compare (Repository.check_incremental repo) in
            if full <> incr then failwith "incremental verdict diverged";
            Repository.rollback repo undo;
            ignore (Repository.check_incremental repo : string list);
            let median f =
              ignore (f ());
              let n = max reps 5 in
              let s = Array.init n (fun _ -> f ()) in
              Array.sort Float.compare s;
              s.(n / 2)
            in
            let sample_full () =
              let undo = Repository.apply_unchecked repo u in
              let t0 = now () in
              ignore (Repository.check_full repo : string list);
              let dt = (now () -. t0) *. 1000.0 in
              Repository.rollback repo undo;
              dt
            in
            let sample_incr () =
              let undo = Repository.apply_unchecked repo u in
              let t0 = now () in
              ignore (Repository.check_incremental repo : string list);
              let dt = (now () -. t0) *. 1000.0 in
              Repository.rollback repo undo;
              (* consume the inverse delta outside the timed window *)
              ignore (Repository.check_incremental repo : string list);
              dt
            in
            let full_ms = median sample_full in
            let incr_ms = median sample_incr in
            let speedup = full_ms /. (incr_ms +. 1e-9) in
            Printf.printf "%-14d %-6d %-14.3f %-16.4f %.0fx\n%!"
              ds.Gen.stats.Gen.bytes k full_ms incr_ms speedup;
            Printf.sprintf
              "{\"bytes\": %d, \"subs\": %d, \"stmts\": %d, \
               \"full_median_ms\": %.4f, \"incremental_median_ms\": %.5f, \
               \"speedup\": %.1f}"
              ds.Gen.stats.Gen.bytes ds.Gen.stats.Gen.submissions k full_ms
              incr_ms speedup)
          ks)
      sizes
  in
  add_json "incremental" ("[\n    " ^ String.concat ",\n    " rows ^ "\n  ]");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* PR 8: the resident check server                                     *)
(* ------------------------------------------------------------------ *)

module Srv = Xic_server.Server
module Proto = Xic_server.Protocol

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1))

let frame_bytes payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* Sustained service rate of the resident server versus paying the
   load on every request (what a one-shot CLI loop does), plus the
   per-request saving of batched guarded transactions.  The server runs
   in a forked child over a Unix-domain socket with a durable (fsync)
   journal; latencies are measured client side, whole round trips. *)
let server_bench ~reps () =
  let size = 256_000 in
  let n_checks = max 200 (reps * 40) in
  Printf.printf "# Resident server vs one-shot loop (%d bytes)\n" size;
  let s = Conf.schema () in
  let ds = Gen.generate ~seed:42 ~target_bytes:size () in
  let sock = Filename.temp_file "bench_srv" ".sock" in
  Sys.remove sock;
  let jpath = Filename.temp_file "bench_srv" ".j" in
  Sys.remove jpath;
  (* one-shot: every request pays parse + shred + check *)
  let oneshot () =
    let repo = Repository.create s in
    Repository.load_fused ~validate:false repo ds.Gen.pub_xml;
    Repository.load_fused ~validate:false repo ds.Gen.rev_xml;
    Repository.add_constraint repo (Conf.conflict s);
    ignore (Repository.check_full repo : string list)
  in
  let oneshot_med, _ = time_stats ~reps ~clean:true oneshot in
  (* resident: the child keeps everything warm *)
  (match Unix.fork () with
   | 0 ->
     (try
        let repo = Repository.create s in
        Repository.load_fused ~validate:false repo ds.Gen.pub_xml;
        Repository.load_fused ~validate:false repo ds.Gen.rev_xml;
        Repository.add_constraint repo (Conf.conflict s);
        Repository.register_pattern repo (Conf.submission_pattern s);
        Repository.set_incremental repo true;
        let j = Xic_journal.Journal.open_ jpath in
        let srv =
          Srv.create
            ~config:{ Srv.default_config with journal = Some j }
            repo
        in
        let lfd = Srv.listen (Proto.Unix_sock sock) in
        Srv.serve ~idle_timeout:0.05 srv lfd;
        Unix._exit 0
      with _ -> Unix._exit 97)
   | child ->
     Fun.protect ~finally:(fun () ->
         (try Unix.kill child Sys.sigkill with Unix.Unix_error _ -> ());
         (try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ());
         List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
           [ sock; jpath ])
     @@ fun () ->
     let rec connect n =
       match Proto.connect (Proto.Unix_sock sock) with
       | fd -> fd
       | exception _ when n > 0 ->
         ignore (Unix.select [] [] [] 0.1);
         connect (n - 1)
     in
     let fd = connect 200 in
     let check_req = Proto.Obj [ ("op", Proto.String "check") ] in
     ignore (Proto.request fd check_req) (* warm up *);
     let lat = Array.init n_checks (fun _ ->
         let t0 = now () in
         ignore (Proto.request fd check_req);
         (now () -. t0) *. 1000.0)
     in
     Array.sort Float.compare lat;
     let total = Array.fold_left ( +. ) 0.0 lat in
     let rps = float_of_int n_checks /. (total /. 1000.0) in
     let p50 = percentile lat 50.0 and p99 = percentile lat 99.0 in
     let oneshot_rps = 1000.0 /. oneshot_med in
     let speedup = rps /. oneshot_rps in
     Printf.printf "# %-26s %-14s %-10s %s\n" "route" "checks/sec" "p50(ms)"
       "p99(ms)";
     Printf.printf "%-28s %-14.1f %-10.3f %.3f\n" "one-shot (load per check)"
       oneshot_rps oneshot_med oneshot_med;
     Printf.printf "%-28s %-14.1f %-10.4f %.4f\n" "resident server" rps p50 p99;
     Printf.printf "sustained speedup: %.0fx over %d requests\n%!" speedup
       n_checks;
     (* guarded updates: serial round trips vs one pipelined batch.
        Every statement journals durably, so the batch's single commit
        fsync (and single composed view-maintenance flush) is the win. *)
     let guard_payload i =
       Proto.to_string
         (Proto.Obj
            [ ("op", Proto.String "guard");
              ( "update",
                Proto.String
                  (Xic_xupdate.Xupdate.to_string
                     (Conf.insert_submission ~select:ds.Gen.legal_select
                        ~title:(Printf.sprintf "Bench %d" i)
                        ~author:ds.Gen.legal_author)) ) ])
     in
     let read_applied () =
       match Proto.read_frame fd with
       | Some resp ->
         if not (Proto.bool_field "ok" resp) then failwith "guard errored";
         (match Proto.string_field "outcome" resp with
          | Some "applied" -> ()
          | o ->
            failwith
              ("guard not applied: " ^ Option.value ~default:"?" o))
       | None -> failwith "server closed"
     in
     let serial_round k =
       let t0 = now () in
       for i = 1 to k do
         write_all fd (frame_bytes (guard_payload i));
         read_applied ()
       done;
       (now () -. t0) *. 1000.0 /. float_of_int k
     in
     let batched_round k =
       let b = Buffer.create 4096 in
       for i = 1 to k do
         Buffer.add_string b (frame_bytes (guard_payload i))
       done;
       let t0 = now () in
       (* one write syscall: the whole batch lands in one poll round *)
       write_all fd (Buffer.contents b);
       for _ = 1 to k do
         read_applied ()
       done;
       (now () -. t0) *. 1000.0 /. float_of_int k
     in
     (* The document grows with every applied guard, so measuring all
        serial rounds before all batched rounds would hand the batched
        side a systematically larger instance.  Interleave them in
        alternating order and take per-side medians: both populations
        face the same document-size distribution. *)
     let interleaved k =
       ignore (serial_round k);
       ignore (batched_round k);
       let n = max reps 5 in
       let ss = ref [] and bs = ref [] in
       for i = 1 to n do
         if i mod 2 = 1 then begin
           ss := serial_round k :: !ss;
           bs := batched_round k :: !bs
         end
         else begin
           bs := batched_round k :: !bs;
           ss := serial_round k :: !ss
         end
       done;
       let med l =
         let a = Array.of_list l in
         Array.sort Float.compare a;
         a.(Array.length a / 2)
       in
       (med !ss, med !bs)
     in
     Printf.printf "# %-8s %-22s %-22s %s\n" "batch" "serial(ms/request)"
       "batched(ms/request)" "saving";
     let guard_rows =
       List.map
         (fun k ->
           let serial_ms, batched_ms = interleaved k in
           let saving = (serial_ms -. batched_ms) /. serial_ms *. 100.0 in
           Printf.printf "%-10d %-22.4f %-22.4f %.0f%%\n%!" k serial_ms
             batched_ms saving;
           Printf.sprintf
             "{\"batch\": %d, \"serial_ms_per_request\": %.4f, \
              \"batched_ms_per_request\": %.4f, \"saving_pct\": %.1f}"
             k serial_ms batched_ms saving)
         [ 1; 4; 16 ]
     in
     (* confirm the pipelined rounds really were applied as batches *)
     let stats =
       Proto.request fd (Proto.Obj [ ("op", Proto.String "stats") ])
     in
     (match Proto.member "server" stats with
      | Some srv_stats ->
        Printf.printf "server applied %d batches (%d guards batched)\n%!"
          (Option.value ~default:0 (Proto.int_field "batches" srv_stats))
          (Option.value ~default:0
             (Proto.int_field "batched_guards" srv_stats))
      | None -> ());
     ignore (Proto.request fd (Proto.Obj [ ("op", Proto.String "shutdown") ]));
     Unix.close fd;
     (match Unix.waitpid [] child with
      | _, Unix.WEXITED 0 -> ()
      | _ -> failwith "server child did not exit cleanly");
     add_json "server"
       (Printf.sprintf
          "{\n\
          \    \"size_bytes\": %d,\n\
          \    \"requests\": %d,\n\
          \    \"oneshot_checks_per_sec\": %.2f,\n\
          \    \"oneshot_median_ms\": %.4f,\n\
          \    \"server_checks_per_sec\": %.2f,\n\
          \    \"server_p50_ms\": %.4f,\n\
          \    \"server_p99_ms\": %.4f,\n\
          \    \"sustained_speedup\": %.1f,\n\
          \    \"guards\": [%s]\n\
          \  }"
          ds.Gen.stats.Gen.bytes n_checks oneshot_rps oneshot_med rps p50 p99
          speedup
          (String.concat ", " guard_rows));
     print_newline ())

(* Serve-path cost of the observability stack: request latency against
   a plain server vs one with structured debug logging, request tracing
   and the slow-request ring all enabled.  Both servers are alive at
   once and the measurement rounds alternate between them in
   interleaved order, so the two populations face the same machine
   state; per-side medians are compared. *)
let server_obs_bench ~reps () =
  let size = 256_000 in
  Printf.printf "# Observability overhead on the serve path (%d bytes)\n" size;
  let s = Conf.schema () in
  let ds = Gen.generate ~seed:42 ~target_bytes:size () in
  (* three configurations: the PR 8 server, the production observability
     setting (info-level structured log + metrics — per-request debug
     lines are filtered before rendering), and the full diagnostic
     stack (per-request debug lines, request tracing, slow ring). *)
  let configs = [ ("plain", `Plain); ("log+metrics", `Info);
                  ("debug+trace", `Debug) ] in
  let spawn mode sock logpath =
    match Unix.fork () with
    | 0 ->
      (try
         (match mode with
          | `Plain -> ()
          | `Info | `Debug ->
            Xic_obs.Log.set_format Xic_obs.Log.Json;
            Xic_obs.Log.set_level
              (match mode with
               | `Debug -> Xic_obs.Log.Debug
               | _ -> Xic_obs.Log.Info);
            (match Xic_obs.Log.open_path logpath with
             | Ok () -> ()
             | Error m -> failwith m);
            if mode = `Debug then Xic_obs.Obs.Trace.set_enabled true);
         let repo = Repository.create s in
         Repository.load_fused ~validate:false repo ds.Gen.pub_xml;
         Repository.load_fused ~validate:false repo ds.Gen.rev_xml;
         Repository.add_constraint repo (Conf.conflict s);
         Repository.set_incremental repo true;
         let srv = Srv.create repo in
         let lfd = Srv.listen (Proto.Unix_sock sock) in
         Srv.serve ~idle_timeout:0.05 srv lfd;
         Unix._exit 0
       with _ -> Unix._exit 97)
    | pid -> pid
  in
  let servers =
    List.map
      (fun (name, mode) ->
        let sock = Filename.temp_file "bench_obs" ".sock" in
        let logpath = Filename.temp_file "bench_obs" ".log" in
        Sys.remove sock;
        (name, sock, logpath, spawn mode sock logpath))
      configs
  in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun (_, sock, logpath, pid) ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            [ sock; logpath ])
        servers)
  @@ fun () ->
  let rec connect sock n =
    match Proto.connect (Proto.Unix_sock sock) with
    | fd -> fd
    | exception _ when n > 0 ->
      ignore (Unix.select [] [] [] 0.1);
      connect sock (n - 1)
  in
  let fds =
    List.map (fun (name, sock, _, _) -> (name, connect sock 200)) servers
  in
  let check_req = Proto.Obj [ ("op", Proto.String "check") ] in
  let round fd k =
    let t0 = now () in
    for _ = 1 to k do
      ignore (Proto.request fd check_req)
    done;
    (now () -. t0) *. 1000.0 /. float_of_int k
  in
  (* rounds long enough (~7ms) that scheduler jitter does not dominate
     the microsecond-scale per-check differences being measured *)
  let k = 500 in
  List.iter (fun (_, fd) -> ignore (round fd k)) fds;
  List.iter (fun (_, fd) -> ignore (round fd k)) fds;
  let n = max (6 * reps) 30 in
  let nc = List.length fds in
  let fda = Array.of_list fds in
  let samples = Array.make_matrix nc n 0.0 in
  (* rotate the visiting order every round so no configuration always
     runs first (or last) within a round *)
  for i = 0 to n - 1 do
    for j = 0 to nc - 1 do
      let c = (i + j) mod nc in
      samples.(c).(i) <- round (snd fda.(c)) k
    done
  done;
  let med arr =
    let a = Array.copy arr in
    Array.sort Float.compare a;
    a.(Array.length a / 2)
  in
  let meds =
    List.mapi (fun c (name, _) -> (name, med samples.(c))) fds
  in
  (* overhead from the per-configuration minima: scheduler and cache
     noise on a shared machine is strictly additive, so the minimum
     over rounds is the closest estimate of each configuration's true
     cost, and the ratio of minima the most stable overhead figure *)
  let plain_idx =
    let rec find i = function
      | ("plain", _) :: _ -> i
      | _ :: rest -> find (i + 1) rest
      | [] -> assert false
    in
    find 0 fds
  in
  let minimum arr = Array.fold_left Float.min arr.(0) arr in
  let overhead_of c =
    (minimum samples.(c) /. minimum samples.(plain_idx) -. 1.0) *. 100.0
  in
  let overheads =
    List.mapi (fun c (name, _) -> (name, overhead_of c)) fds
  in
  let plain_ms = List.assoc "plain" meds in
  Printf.printf "# %-30s %-18s %s\n" "configuration" "ms/check (median)"
    "overhead";
  List.iter
    (fun (name, ms) ->
      Printf.printf "%-32s %-18.4f %+.1f%%\n" name ms
        (List.assoc name overheads))
    meds;
  Printf.printf "(%d checks/round, %d rounds per configuration)\n%!" k n;
  List.iter
    (fun (_, fd) ->
      ignore (Proto.request fd (Proto.Obj [ ("op", Proto.String "shutdown") ]));
      Unix.close fd)
    fds;
  let log_ms = List.assoc "log+metrics" meds in
  let dbg_ms = List.assoc "debug+trace" meds in
  add_json "server_obs"
    (Printf.sprintf
       "{\"checks_per_round\": %d, \"rounds\": %d, \"plain_ms_per_check\": \
        %.4f, \"log_metrics_ms_per_check\": %.4f, \
        \"log_metrics_overhead_pct\": %.2f, \"debug_trace_ms_per_check\": \
        %.4f, \"debug_trace_overhead_pct\": %.2f}"
       k n plain_ms log_ms
       (List.assoc "log+metrics" overheads)
       dbg_ms
       (List.assoc "debug+trace" overheads));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* PR 10: copy-on-write generation pins                                *)
(* ------------------------------------------------------------------ *)

module DStore = Xic_datalog.Store

(* Pin open latency versus document size.  A generation handle is an
   O(#relations) pointer capture over the copy-on-write store, so both
   the steady pin (retained-table reuse) and the cold freeze must stay
   flat while the legacy copy-based pin of PR 8 — rebuild every
   relation into a private store — grows linearly with the document. *)
let pins_bench ~sizes ~reps () =
  Printf.printf "# Generation pin open latency vs document size\n";
  Printf.printf "# %-12s %-8s %-14s %-14s %-16s %s\n" "size(bytes)" "facts"
    "pin_open(us)" "freeze(us)" "copy_pin(us)" "speedup";
  let rows =
    List.map
      (fun size ->
        let { repo; ds; _ } = setup ~size ~constraint_:Conf.conflict () in
        let st = Repository.store repo in
        let facts = DStore.total_tuples st in
        (* the steady pin: retained-table reuse plus refcounting — what
           the server pays per pin request *)
        let pin_ms, _ =
          time_stats ~reps ~batch:1000 (fun () ->
              let p = Repository.pin repo in
              Repository.unpin repo p)
        in
        (* the cold handle capture behind the first pin of a generation *)
        let freeze_ms, _ =
          time_stats ~reps ~batch:1000 (fun () -> DStore.freeze st)
        in
        (* what PR 8 paid: rebuild every relation into a private store *)
        let copy_ms, _ =
          time_stats ~reps (fun () -> DStore.of_facts (DStore.to_facts st))
        in
        let pin_us = pin_ms *. 1000.0 in
        let freeze_us = freeze_ms *. 1000.0 in
        let copy_us = copy_ms *. 1000.0 in
        let speedup = copy_us /. Float.max pin_us freeze_us in
        Printf.printf "%-14d %-8d %-14.3f %-14.3f %-16.1f %.0fx\n%!" size
          facts pin_us freeze_us copy_us speedup;
        Printf.sprintf
          "{\"bytes\": %d, \"facts\": %d, \"pin_open_us\": %.3f, \
           \"freeze_us\": %.3f, \"copy_pin_us\": %.1f, \"speedup\": %.0f}"
          ds.Gen.stats.Gen.bytes facts pin_us freeze_us copy_us speedup)
      sizes
  in
  add_json "pins" ("[\n    " ^ String.concat ",\n    " rows ^ "\n  ]");
  print_newline ()

(* Concurrent pinned readers under writer churn, over the socket: pin
   open round trips, plain-check service rate while the pins are held
   and guards keep committing (the versioning layer must not tax the
   hot path), the heap each held pin retains beyond the live store
   once the writer has moved on, and read-under-pin latency (a full
   evaluation over the frozen handle). *)
let server_pins_bench ~reps () =
  let sizes = [ 256_000; 1_024_000 ] in
  let pins_held = 8 and bursts = 8 in
  let commits_per_burst = 2 in
  Printf.printf "# Pinned readers under writer churn (%d pins held, %d \
                 writer commits)\n"
    pins_held (bursts * commits_per_burst);
  Printf.printf "# %-12s %-20s %-18s %-12s %-24s %s\n" "size(bytes)"
    "pin_open p50/p99(us)" "mixed checks/sec" "pin(bytes)"
    "read_under_pin p50/p99(ms)" "retained";
  let s = Conf.schema () in
  let rows =
    List.map
      (fun size ->
        let ds = Gen.generate ~seed:42 ~target_bytes:size () in
        let sock = Filename.temp_file "bench_pins" ".sock" in
        Sys.remove sock;
        let jpath = Filename.temp_file "bench_pins" ".j" in
        Sys.remove jpath;
        match Unix.fork () with
        | 0 ->
          (try
             let repo = Repository.create s in
             Repository.load_fused ~validate:false repo ds.Gen.pub_xml;
             Repository.load_fused ~validate:false repo ds.Gen.rev_xml;
             Repository.add_constraint repo (Conf.conflict s);
             Repository.register_pattern repo (Conf.submission_pattern s);
             Repository.set_incremental repo true;
             let j = Xic_journal.Journal.open_ jpath in
             let srv =
               Srv.create
                 ~config:{ Srv.default_config with journal = Some j }
                 repo
             in
             let lfd = Srv.listen (Proto.Unix_sock sock) in
             Srv.serve ~idle_timeout:0.05 srv lfd;
             Unix._exit 0
           with _ -> Unix._exit 97)
        | child ->
          Fun.protect ~finally:(fun () ->
              (try Unix.kill child Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ());
              List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
                [ sock; jpath ])
          @@ fun () ->
          let rec connect n =
            match Proto.connect (Proto.Unix_sock sock) with
            | fd -> fd
            | exception _ when n > 0 ->
              ignore (Unix.select [] [] [] 0.1);
              connect (n - 1)
          in
          let fd = connect 200 in
          let rq j = Proto.request fd j in
          let check_req = Proto.Obj [ ("op", Proto.String "check") ] in
          ignore (rq check_req) (* warm up *);
          (* pin open latency over the wire; the opened pins are real,
             the first [pins_held] stay held through the churn below *)
          let n_pins = max 100 (reps * 20) in
          let pin_ids = ref [] in
          let pin_lat =
            Array.init n_pins (fun _ ->
                let t0 = now () in
                let resp = rq (Proto.Obj [ ("op", Proto.String "pin") ]) in
                let dt = (now () -. t0) *. 1e6 in
                (match Proto.int_field "pin" resp with
                 | Some id -> pin_ids := id :: !pin_ids
                 | None -> failwith "pin request failed");
                dt)
          in
          Array.sort Float.compare pin_lat;
          let pin_p50 = percentile pin_lat 50.0
          and pin_p99 = percentile pin_lat 99.0 in
          let held, spare =
            let ids = List.rev !pin_ids in
            (List.filteri (fun i _ -> i < pins_held) ids,
             List.filteri (fun i _ -> i >= pins_held) ids)
          in
          List.iter
            (fun id ->
              ignore
                (rq
                   (Proto.Obj
                      [ ("op", Proto.String "unpin"); ("pin", Proto.Int id) ])))
            spare;
          (* mixed workload: timed plain-check bursts with (untimed)
             guard commits between them — every burst runs against a
             newer generation while the held pins stay at the old one *)
          let guard i =
            let resp =
              rq
                (Proto.Obj
                   [ ("op", Proto.String "guard");
                     ( "update",
                       Proto.String
                         (Xic_xupdate.Xupdate.to_string
                            (Conf.insert_submission ~select:ds.Gen.legal_select
                               ~title:(Printf.sprintf "Churn %d" i)
                               ~author:ds.Gen.legal_author)) ) ])
            in
            match Proto.string_field "outcome" resp with
            | Some "applied" -> ()
            | o ->
              failwith ("churn guard not applied: " ^ Option.value ~default:"?" o)
          in
          let checks_per_burst = 1000 in
          let timed = ref 0.0 and commits = ref 0 in
          for b = 1 to bursts do
            let t0 = now () in
            for _ = 1 to checks_per_burst do
              ignore (rq check_req)
            done;
            timed := !timed +. (now () -. t0);
            for k = 1 to commits_per_burst do
              incr commits;
              guard ((b * 100) + k)
            done
          done;
          let mixed_rps = float_of_int (bursts * checks_per_burst) /. !timed in
          (* what the held pins cost now that the writer has moved on *)
          let hist = rq (Proto.Obj [ ("op", Proto.String "history") ]) in
          let pin_bytes =
            Option.value ~default:0 (Proto.int_field "pin_bytes" hist)
          in
          let retained =
            match Proto.list_field "retained" hist with
            | Some rs -> List.length rs
            | None -> 0
          in
          let per_pin_bytes = pin_bytes / max 1 pins_held in
          (* read-under-pin: a full evaluation over the frozen handle *)
          let first_pin = List.hd held in
          let pinned_req =
            Proto.Obj
              [ ("op", Proto.String "check"); ("pin", Proto.Int first_pin) ]
          in
          ignore (rq pinned_req) (* warm up *);
          let n_reads = max 30 (reps * 6) in
          let read_lat =
            Array.init n_reads (fun _ ->
                let t0 = now () in
                ignore (rq pinned_req);
                (now () -. t0) *. 1000.0)
          in
          Array.sort Float.compare read_lat;
          let read_p50 = percentile read_lat 50.0
          and read_p99 = percentile read_lat 99.0 in
          List.iter
            (fun id ->
              ignore
                (rq
                   (Proto.Obj
                      [ ("op", Proto.String "unpin"); ("pin", Proto.Int id) ])))
            held;
          ignore (rq (Proto.Obj [ ("op", Proto.String "shutdown") ]));
          Unix.close fd;
          (match Unix.waitpid [] child with
           | _, Unix.WEXITED 0 -> ()
           | _ -> failwith "server child did not exit cleanly");
          Printf.printf "%-14d %7.1f / %-10.1f %-18.1f %-12d %10.3f / %-11.3f %d\n%!"
            size pin_p50 pin_p99 mixed_rps per_pin_bytes read_p50 read_p99
            retained;
          Printf.sprintf
            "{\"bytes\": %d, \"pins_held\": %d, \"writer_commits\": %d, \
             \"pin_open_p50_us\": %.2f, \"pin_open_p99_us\": %.2f, \
             \"mixed_checks_per_sec\": %.1f, \"per_pin_bytes\": %d, \
             \"read_under_pin_p50_ms\": %.4f, \"read_under_pin_p99_ms\": \
             %.4f, \"retained_generations\": %d}"
            ds.Gen.stats.Gen.bytes pins_held !commits pin_p50 pin_p99
            mixed_rps per_pin_bytes read_p50 read_p99 retained)
      sizes
  in
  add_json "server_pins" ("[\n    " ^ String.concat ",\n    " rows ^ "\n  ]");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let reps = ref 5 in
  let sizes = ref default_sizes in
  let which = ref [] in
  let json = ref None in
  let rec parse = function
    | [] -> ()
    | "--reps" :: n :: rest ->
      reps := int_of_string n;
      parse rest
    | "--sizes" :: s :: rest ->
      sizes := List.map int_of_string (String.split_on_char ',' s);
      parse rest
    | "--json" :: rest ->
      json := Some "BENCH_PR10.json";
      parse rest
    | x :: rest ->
      which := x :: !which;
      parse rest
  in
  parse args;
  let which = if !which = [] then [ "all" ] else List.rev !which in
  let reps = !reps and sizes = !sizes in
  let run = function
    | "fig1a" -> fig1a ~sizes ~reps ()
    | "fig1b" -> fig1b ~sizes ~reps ()
    | "fig_simp" -> fig_simp ()
    | "ex45" -> ex45 ()
    | "ablations" -> ablations ~reps ()
    | "index" -> index_bench ~sizes ~reps ()
    | "journal" -> journal_bench ~sizes ~reps ()
    | "incremental" -> incremental_bench ~sizes ~reps ()
    | "pipeline" -> pipeline ~sizes ~reps ()
    | "stages" -> stages ~sizes ~reps ()
    | "ingest" -> ingest ~sizes ~reps ()
    | "coldstart" -> coldstart ~sizes ~reps ()
    | "server" -> server_bench ~reps ()
    | "server_obs" -> server_obs_bench ~reps ()
    | "pins" -> pins_bench ~sizes ~reps ()
    | "server_pins" -> server_pins_bench ~reps ()
    | "micro" -> micro ()
    | "all" ->
      fig1a ~sizes ~reps ();
      fig1b ~sizes ~reps ();
      fig_simp ();
      ex45 ();
      ablations ~reps ();
      index_bench ~sizes ~reps ();
      journal_bench ~sizes ~reps ();
      incremental_bench ~sizes ~reps ();
      stages ~sizes ~reps ();
      ingest ~sizes ~reps ();
      coldstart ~sizes ~reps ();
      pipeline ~sizes ~reps ();
      server_bench ~reps ();
      server_obs_bench ~reps ();
      pins_bench ~sizes ~reps ();
      server_pins_bench ~reps ();
      micro ()
    | other ->
      Printf.eprintf
        "unknown experiment %S (expected \
         fig1a|fig1b|fig_simp|ex45|ablations|index|journal|incremental|\
         stages|ingest|coldstart|pipeline|server|server_obs|pins|\
         server_pins|micro|all)\n"
        other;
      exit 2
  in
  List.iter run which;
  match !json with None -> () | Some path -> write_json path ~reps
