(* regress — compare two BENCH_*.json files and fail when a headline
   series regresses beyond tolerance.

     regress BASELINE.json CURRENT.json [--tolerance PCT]

   Each headline series names one number (or one number per document
   size, for the array-shaped sections); a series is a regression when
   the current value is worse than the baseline by more than the
   tolerance in the series' bad direction (throughput falling,
   latencies rising).  Improvements of any magnitude pass.  A series
   absent from either file is skipped with a warning — older baselines
   predate some sections — so a gate against an old baseline checks
   exactly the series both runs measured.  Exit status: 0 clean,
   1 regression, 2 usage/parse error. *)

module P = Xic_server.Protocol

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("regress: " ^ s);
      exit 2)
    fmt

let read_json path =
  let s =
    match open_in_bin path with
    | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    | exception Sys_error m -> die "%s" m
  in
  match P.of_string s with
  | j -> j
  | exception P.Protocol_error m -> die "%s: %s" path m

let num = function
  | Some (P.Int i) -> Some (float_of_int i)
  | Some (P.Float f) -> Some f
  | _ -> None

type dir = Higher_better | Lower_better

(* A series extracts (instance-key, value) pairs from a report; the
   instance key is the document size for array-shaped sections, 0 for
   scalars.  Only keys present in both files are compared. *)
type series = {
  name : string;
  dir : dir;
  extract : P.json -> (int * float) list;
}

let scalar section field j =
  match P.member section j with
  | Some obj -> (match num (P.member field obj) with
                 | Some v -> [ (0, v) ]
                 | None -> [])
  | None -> []

(* One value per row of an array section, keyed by its "bytes" field;
   [filter] restricts the rows (e.g. single-statement transactions). *)
let per_size section ?(filter = fun _ -> true) field j =
  match P.member section j with
  | Some (P.List rows) ->
    List.filter_map
      (fun row ->
        match (P.int_field "bytes" row, num (P.member field row)) with
        | Some b, Some v when filter row -> Some (b, v)
        | _ -> None)
      rows
  | _ -> []

let headline =
  [ { name = "server.server_checks_per_sec";
      dir = Higher_better;
      extract = scalar "server" "server_checks_per_sec" };
    { name = "incremental[stmts=1].incremental_median_ms";
      dir = Lower_better;
      extract =
        per_size "incremental"
          ~filter:(fun row -> P.int_field "stmts" row = Some 1)
          "incremental_median_ms" };
    { name = "coldstart.snapshot_median_ms";
      dir = Lower_better;
      extract = per_size "coldstart" "snapshot_median_ms" };
    { name = "pins.pin_open_us";
      dir = Lower_better;
      extract = per_size "pins" "pin_open_us" };
    { name = "server_pins.mixed_checks_per_sec";
      dir = Higher_better;
      extract = per_size "server_pins" "mixed_checks_per_sec" } ]

let () =
  let tolerance = ref 15.0 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: pct :: rest ->
      (match float_of_string_opt pct with
       | Some t when t >= 0.0 -> tolerance := t
       | _ -> die "--tolerance expects a non-negative percentage, got %S" pct);
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ -> die "usage: regress BASELINE.json CURRENT.json [--tolerance PCT]"
  in
  let baseline = read_json baseline_path in
  let current = read_json current_path in
  let tol = !tolerance in
  Printf.printf "regress: %s -> %s (tolerance %.0f%%)\n" baseline_path
    current_path tol;
  let regressions = ref 0 and compared = ref 0 in
  List.iter
    (fun s ->
      let base = s.extract baseline and cur = s.extract current in
      let skip side =
        Printf.printf "  SKIP  %-45s (absent from %s)\n" s.name side
      in
      if base = [] then skip baseline_path
      else if cur = [] then skip current_path
      else
        List.iter
          (fun (key, bv) ->
            match List.assoc_opt key cur with
            | None -> ()
            | Some cv ->
              incr compared;
              let delta = (cv -. bv) /. bv *. 100.0 in
              let bad =
                match s.dir with
                | Higher_better -> delta < -.tol
                | Lower_better -> delta > tol
              in
              let label =
                if key = 0 then s.name
                else Printf.sprintf "%s @%db" s.name key
              in
              Printf.printf "  %s  %-45s %12.4f -> %12.4f  %+6.1f%%\n"
                (if bad then "FAIL" else " ok ")
                label bv cv delta;
              if bad then incr regressions)
          base)
    headline;
  if !compared = 0 then
    print_endline "regress: no comparable series (all skipped)";
  if !regressions > 0 then begin
    Printf.printf "regress: %d series regressed beyond %.0f%%\n" !regressions
      tol;
    exit 1
  end
  else print_endline "regress: no regressions"
